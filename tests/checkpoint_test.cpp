// The checkpoint layer (harness/checkpoint.h): atomic artifact
// writes, the journal format round trip, checkpointed shard runs
// byte-identical to the monolithic CSV across every interrupt point,
// clean-stop semantics (interrupted hook, cell budget), and the
// resume validation that rejects journals from a different grid,
// seed, engine, partition, or build.
//
// Deliberate on-disk damage — torn tails, bit flips, truncation at
// every byte, duplicate records — lives in fault_injection_test.cpp.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "harness/checkpoint.h"
#include "harness/csv.h"
#include "harness/shard.h"
#include "harness/sweep.h"
#include "info/distribution.h"

namespace crp::harness {
namespace {

/// A fresh per-test scratch directory under the gtest temp root,
/// removed up front so reruns never see stale journals.
std::filesystem::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   (std::string("crp_checkpoint_") + info->test_suite_name() +
                    "_" + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The shard_test fixture: two schedules and a CD policy crossed with
/// two workloads — 6 cells, enough for uneven partitions.
struct Fixture {
  Fixture()
      : decay(1 << 10),
        slow_decay(1 << 6),
        willard(1 << 10),
        uniform(info::SizeDistribution::uniform(1 << 10)) {}

  SweepGrid grid() const {
    SweepGrid grid;
    grid.add_algorithm({.name = "decay", .schedule = &decay})
        .add_algorithm({.name = "slow-decay", .schedule = &slow_decay})
        .add_algorithm({.name = "willard", .policy = &willard})
        .add_sizes({.name = "uniform", .distribution = &uniform})
        .add_sizes({.name = "k=100", .fixed_k = 100})
        .add_budget(1 << 12);
    return grid;
  }

  baselines::DecaySchedule decay;
  baselines::DecaySchedule slow_decay;
  baselines::WillardPolicy willard;
  info::SizeDistribution uniform;
};

const SweepOptions kOptions{.trials = 120, .seed = 77, .threads = 1};

/// Expects `action` to throw std::invalid_argument whose message
/// contains `needle` — the actionable part of the error.
template <typename Action>
void expect_throws_with(const Action& action, const std::string& needle) {
  try {
    action();
    FAIL() << "expected std::invalid_argument containing \"" << needle
           << "\"";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "actual error: " << error.what();
  }
}

TEST(AtomicWriteFile, WritesCreatesParentsAndOverwrites) {
  const auto dir = test_dir();
  const auto path = dir / "nested" / "deeper" / "artifact.csv";
  atomic_write_file(path.string(), "first contents\n");
  EXPECT_EQ(read_file(path), "first contents\n");
  atomic_write_file(path.string(), "second contents\n");
  EXPECT_EQ(read_file(path), "second contents\n");
  // The temp name never survives — success or failure, only the final
  // name exists afterwards.
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST(AtomicWriteFile, FailureLeavesExistingFileIntact) {
  const auto dir = test_dir();
  const auto path = dir / "artifact.csv";
  atomic_write_file(path.string(), "precious\n");
  // Writing *under a path whose parent is a file* must fail with
  // IoError and must not disturb the sibling artifact.
  EXPECT_THROW(
      atomic_write_file((path / "impossible.csv").string(), "clobber"),
      IoError);
  EXPECT_EQ(read_file(path), "precious\n");
}

TEST(JournalFormat, RoundTripsHeaderAndRecords) {
  const auto dir = test_dir();
  const auto path = (dir / "shard.journal").string();
  ShardManifest identity;
  identity.engine = "batch";
  identity.cd_engine = "history-tree";
  identity.grid_hash = 0xdeadbeefcafef00dULL;
  identity.master_seed = ~std::uint64_t{0};
  identity.trials = 6000;
  identity.total_cells = 9;
  identity.cell_begin = 3;
  identity.cell_end = 7;
  const std::string header = sweep_csv_header();
  // Rows may legally carry embedded newlines and quotes (csv_quote);
  // the length-prefixed framing must not care.
  const std::vector<CheckpointRecord> records = {
      {.cell_index = 4, .cell_seed = 0x1234, .row = "\"odd\nname\",x,1,2,3"},
      {.cell_index = 3, .cell_seed = 1, .row = "plain,y,4,5,6"},
  };
  std::string bytes = format_checkpoint_header(identity, header);
  for (const auto& record : records) {
    bytes += format_checkpoint_record(record);
  }
  atomic_write_file(path, bytes);

  const CheckpointJournal journal = read_checkpoint_journal(path);
  EXPECT_EQ(journal.grid_hash, identity.grid_hash);
  EXPECT_EQ(journal.master_seed, identity.master_seed);
  EXPECT_EQ(journal.trials, identity.trials);
  EXPECT_EQ(journal.total_cells, identity.total_cells);
  EXPECT_EQ(journal.cell_begin, identity.cell_begin);
  EXPECT_EQ(journal.cell_end, identity.cell_end);
  EXPECT_EQ(journal.engine, identity.engine);
  EXPECT_EQ(journal.cd_engine, identity.cd_engine);
  EXPECT_EQ(journal.csv_header, header);
  ASSERT_EQ(journal.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(journal.records[i].cell_index, records[i].cell_index);
    EXPECT_EQ(journal.records[i].cell_seed, records[i].cell_seed);
    EXPECT_EQ(journal.records[i].row, records[i].row);
  }
  EXPECT_EQ(journal.valid_bytes, bytes.size());
  EXPECT_EQ(journal.torn_bytes, 0u);
}

TEST(CheckpointedRun, FreshRunMatchesMonolithicShardCsv) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();

  const ShardRun reference =
      run_sweep_shard(cells, {.shard_count = 2, .shard_index = 0}, kOptions);
  std::ostringstream reference_csv;
  write_sweep_csv(reference_csv, reference.results);

  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "shard.journal").string();
  const auto run = run_sweep_shard_checkpointed(
      cells, {.shard_count = 2, .shard_index = 0}, kOptions, checkpoint);
  EXPECT_EQ(run.status, CheckpointRunStatus::kCompleted);
  EXPECT_EQ(run.replayed_cells, 0u);
  EXPECT_EQ(run.executed_cells, reference.results.size());
  EXPECT_EQ(run.remaining_cells, 0u);
  EXPECT_EQ(run.csv, reference_csv.str());
  EXPECT_EQ(run.manifest.grid_hash, reference.manifest.grid_hash);
  EXPECT_EQ(run.manifest.cell_seeds, reference.manifest.cell_seeds);
}

TEST(CheckpointedRun, InterruptAtEveryCellThenResumeIsByteIdentical) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const ShardOptions shard{.shard_count = 1, .shard_index = 0};

  CheckpointRunOptions reference_options;
  const auto reference_dir = test_dir();
  reference_options.journal_path =
      (reference_dir / "reference.journal").string();
  const auto reference =
      run_sweep_shard_checkpointed(cells, shard, kOptions, reference_options);
  ASSERT_EQ(reference.status, CheckpointRunStatus::kCompleted);

  for (std::size_t stop = 1; stop < cells.size(); ++stop) {
    const auto stop_dir =
        reference_dir / ("stop-" + std::to_string(stop));
    std::filesystem::create_directories(stop_dir);
    CheckpointRunOptions checkpoint;
    checkpoint.journal_path = (stop_dir / "shard.journal").string();
    checkpoint.max_cells = stop;
    const auto first =
        run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
    EXPECT_EQ(first.status, CheckpointRunStatus::kInterrupted);
    EXPECT_EQ(first.executed_cells, stop);
    EXPECT_EQ(first.remaining_cells, cells.size() - stop);
    EXPECT_TRUE(first.csv.empty());

    checkpoint.resume = true;
    checkpoint.max_cells = 0;
    const auto resumed =
        run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
    EXPECT_EQ(resumed.status, CheckpointRunStatus::kCompleted);
    EXPECT_EQ(resumed.replayed_cells, stop);
    EXPECT_EQ(resumed.executed_cells, cells.size() - stop);
    EXPECT_EQ(resumed.csv, reference.csv) << "stopped after " << stop;
  }
}

TEST(CheckpointedRun, ResumeOfCompletedJournalIsIdempotent) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "shard.journal").string();
  const auto first = run_sweep_shard_checkpointed(
      cells, {.shard_count = 1, .shard_index = 0}, kOptions, checkpoint);
  ASSERT_EQ(first.status, CheckpointRunStatus::kCompleted);

  checkpoint.resume = true;
  const auto again = run_sweep_shard_checkpointed(
      cells, {.shard_count = 1, .shard_index = 0}, kOptions, checkpoint);
  EXPECT_EQ(again.status, CheckpointRunStatus::kCompleted);
  EXPECT_EQ(again.replayed_cells, cells.size());
  EXPECT_EQ(again.executed_cells, 0u);
  EXPECT_EQ(again.csv, first.csv);
}

TEST(CheckpointedRun, InterruptedHookStopsBetweenCells) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "shard.journal").string();
  // The hook is polled *before* each cell; returning true from the
  // second poll onward means exactly one cell completes — the
  // finish-the-in-flight-cell semantics the signal handler relies on.
  std::size_t polls = 0;
  checkpoint.interrupted = [&polls] { return ++polls > 1; };
  const auto run = run_sweep_shard_checkpointed(
      cells, {.shard_count = 1, .shard_index = 0}, kOptions, checkpoint);
  EXPECT_EQ(run.status, CheckpointRunStatus::kInterrupted);
  EXPECT_EQ(run.executed_cells, 1u);
  // The completed cell is already durable: a fresh read sees it.
  const auto journal = read_checkpoint_journal(checkpoint.journal_path);
  ASSERT_EQ(journal.records.size(), 1u);
  EXPECT_EQ(journal.torn_bytes, 0u);
}

TEST(CheckpointedRun, RejectsFreshOverExistingAndResumeWithoutJournal) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "shard.journal").string();
  checkpoint.max_cells = 1;
  (void)run_sweep_shard_checkpointed(
      cells, {.shard_count = 1, .shard_index = 0}, kOptions, checkpoint);

  expect_throws_with(
      [&] {
        (void)run_sweep_shard_checkpointed(
            cells, {.shard_count = 1, .shard_index = 0}, kOptions, checkpoint);
      },
      "already exists");

  CheckpointRunOptions missing;
  missing.journal_path = (dir / "no-such.journal").string();
  missing.resume = true;
  expect_throws_with(
      [&] {
        (void)run_sweep_shard_checkpointed(
            cells, {.shard_count = 1, .shard_index = 0}, kOptions, missing);
      },
      "nothing to resume");
}

TEST(CheckpointedRun, ResumeValidationRejectsMismatchedIdentity) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  const ShardOptions shard{.shard_count = 2, .shard_index = 0};
  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "shard.journal").string();
  checkpoint.max_cells = 1;
  (void)run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
  checkpoint.resume = true;
  checkpoint.max_cells = 0;

  const auto resume_with = [&](const ShardOptions& shard_options,
                               const SweepOptions& sweep_options) {
    return [&, shard_options, sweep_options] {
      (void)run_sweep_shard_checkpointed(cells, shard_options, sweep_options,
                                         checkpoint);
    };
  };

  SweepOptions other_seed = kOptions;
  other_seed.seed = kOptions.seed + 1;
  expect_throws_with(resume_with(shard, other_seed), "master seed");

  SweepOptions other_trials = kOptions;
  other_trials.trials = kOptions.trials + 1;
  expect_throws_with(resume_with(shard, other_trials), "trials");

  SweepOptions other_engine = kOptions;
  other_engine.cd_engine = CdEngine::kHistoryTree;
  expect_throws_with(resume_with(shard, other_engine),
                     "engine configuration");

  expect_throws_with(
      resume_with({.shard_count = 3, .shard_index = 0}, kOptions),
      "cell range");

  // A different grid (an extra budget column changes every cell) must
  // be caught by the fingerprint before anything is replayed.
  Fixture g;
  auto other_grid = g.grid();
  other_grid.add_budget(1 << 13);
  const auto other_cells = other_grid.cells();
  expect_throws_with(
      [&] {
        (void)run_sweep_shard_checkpointed(other_cells, shard, kOptions,
                                           checkpoint);
      },
      "grid fingerprint");
}

TEST(CheckpointedRun, ResumeRejectsRecordsFromForeignPartition) {
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  const ShardOptions shard{.shard_count = 1, .shard_index = 0};
  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "shard.journal").string();
  checkpoint.max_cells = 1;
  (void)run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);

  // Re-frame the journal's one record under a tampered seed. The
  // framing stays self-consistent (format_checkpoint_record recomputes
  // the checksum), so only the seed-vs-derived cross-check can catch
  // it — exactly the "journal from a different partition" case.
  const auto journal = read_checkpoint_journal(checkpoint.journal_path);
  ASSERT_EQ(journal.records.size(), 1u);
  CheckpointRecord tampered = journal.records.front();
  tampered.cell_seed ^= 1;
  const std::string header_bytes =
      read_file(checkpoint.journal_path)
          .substr(0, journal.valid_bytes -
                         format_checkpoint_record(journal.records.front())
                             .size());
  atomic_write_file(checkpoint.journal_path,
                    header_bytes + format_checkpoint_record(tampered));

  checkpoint.resume = true;
  checkpoint.max_cells = 0;
  expect_throws_with(
      [&] {
        (void)run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
      },
      "journaled under seed");

  // Same framing trick, but the *row* lies about its cell_seed column
  // while the record seed is correct — the row cross-check fires.
  CheckpointRecord lying = journal.records.front();
  auto columns = split_csv_row(lying.row);
  ASSERT_GT(columns.size(), 4u);
  columns[4] = "999";
  lying.row = csv_row_string(columns);
  atomic_write_file(checkpoint.journal_path,
                    header_bytes + format_checkpoint_record(lying));
  expect_throws_with(
      [&] {
        (void)run_sweep_shard_checkpointed(cells, shard, kOptions, checkpoint);
      },
      "row carries cell_seed");
}

TEST(CheckpointedRun, HistoryTreeEngineMatchesMonolithic) {
  // The shared tree cache must be an amortization, never a behavior
  // change: a checkpointed history-tree run equals the monolithic CSV.
  const Fixture f;
  const auto cells = f.grid().cells();
  const auto dir = test_dir();
  SweepOptions options = kOptions;
  options.cd_engine = CdEngine::kHistoryTree;

  const ShardRun reference =
      run_sweep_shard(cells, {.shard_count = 1, .shard_index = 0}, options);
  std::ostringstream reference_csv;
  write_sweep_csv(reference_csv, reference.results);

  CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / "shard.journal").string();
  checkpoint.max_cells = 2;
  const auto first = run_sweep_shard_checkpointed(
      cells, {.shard_count = 1, .shard_index = 0}, options, checkpoint);
  ASSERT_EQ(first.status, CheckpointRunStatus::kInterrupted);
  checkpoint.resume = true;
  checkpoint.max_cells = 0;
  const auto resumed = run_sweep_shard_checkpointed(
      cells, {.shard_count = 1, .shard_index = 0}, options, checkpoint);
  EXPECT_EQ(resumed.status, CheckpointRunStatus::kCompleted);
  EXPECT_EQ(resumed.csv, reference_csv.str());
}

}  // namespace
}  // namespace crp::harness
