// Validates the target-distance coding machinery driving the paper's
// lower bounds: round-trip correctness and the Source Coding Theorem
// chain E[code length] >= H(targets) (Lemmas 2.5 and 2.9).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "rangefind/coding.h"
#include "rangefind/sequence.h"
#include "rangefind/tree.h"

namespace crp::rangefind {
namespace {

TEST(EliasGamma, KnownCodewords) {
  EXPECT_EQ(elias_gamma_encode(1), (std::vector<bool>{true}));
  EXPECT_EQ(elias_gamma_encode(2), (std::vector<bool>{false, true, false}));
  EXPECT_EQ(elias_gamma_encode(3), (std::vector<bool>{false, true, true}));
  EXPECT_EQ(elias_gamma_encode(4),
            (std::vector<bool>{false, false, true, false, false}));
  EXPECT_THROW(elias_gamma_encode(0), std::invalid_argument);
}

TEST(EliasGamma, RoundTripsUpTo4096) {
  for (std::size_t v = 1; v <= 4096; ++v) {
    auto bits = elias_gamma_encode(v);
    const std::size_t len = bits.size();
    bits.push_back(true);  // trailing garbage
    const auto decoded = elias_gamma_decode(bits);
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(decoded->first, v);
    EXPECT_EQ(decoded->second, len);
  }
}

TEST(EliasGamma, LengthIsLogarithmic) {
  for (std::size_t v : {1ul, 2ul, 7ul, 64ul, 1000ul}) {
    const double expected =
        2.0 * std::floor(std::log2(static_cast<double>(v))) + 1.0;
    EXPECT_EQ(static_cast<double>(elias_gamma_encode(v).size()), expected);
  }
}

TEST(EliasGamma, DecodeRejectsTruncation) {
  EXPECT_FALSE(elias_gamma_decode(std::vector<bool>{}).has_value());
  EXPECT_FALSE(
      elias_gamma_decode(std::vector<bool>{false, false}).has_value());
  EXPECT_FALSE(
      elias_gamma_decode(std::vector<bool>{false, true}).has_value());
}

TEST(SequenceCode, RoundTripsEveryTarget) {
  const RangeFindingSequence seq({2, 8, 5, 11, 1, 14});
  const SequenceTargetDistanceCode code(seq, 2.0);
  for (std::size_t target = 1; target <= 16; ++target) {
    const auto bits = code.encode(target);
    if (!bits) continue;  // out of reach for this sequence
    const auto decoded = code.decode(*bits);
    ASSERT_TRUE(decoded.has_value()) << target;
    EXPECT_EQ(*decoded, target);
  }
}

TEST(SequenceCode, ZeroRadiusNeedsNoDistanceBits) {
  const RangeFindingSequence seq({1, 2, 3, 4});
  const SequenceTargetDistanceCode code(seq, 0.0);
  EXPECT_EQ(code.distance_bits(), 0u);
  const auto bits = code.encode(3);
  ASSERT_TRUE(bits.has_value());
  // gamma(3) = 3 bits + sign bit + 0 distance bits.
  EXPECT_EQ(bits->size(), 4u);
  EXPECT_EQ(code.decode(*bits), std::optional<std::size_t>(3));
}

TEST(SequenceCode, UnreachableTargetsEncodeToNothing) {
  const RangeFindingSequence seq({1});
  const SequenceTargetDistanceCode code(seq, 0.0);
  EXPECT_FALSE(code.encode(5).has_value());
}

TEST(SequenceCode, SourceCodingTheoremLowerBoundsExpectedLength) {
  // Lemma 2.5's chain: the target-distance code built from any range
  // finding sequence is uniquely decodable, so its expected length is
  // at least H(targets). Check across several target distributions.
  constexpr std::size_t n = 1 << 12;
  const baselines::DecaySchedule decay(n);
  const auto seq = rf_construction(decay, 500, n);
  const double radius = std::log2(std::log2(static_cast<double>(n)));
  const SequenceTargetDistanceCode code(seq, radius);
  const std::size_t num_ranges = info::num_ranges(n);
  for (double decay_rate : {0.3, 0.6, 0.9, 1.0}) {
    const auto targets =
        crp::predict::geometric_ranges(num_ranges, decay_rate);
    const auto [bits, mass] = code.expected_length(targets);
    ASSERT_NEAR(mass, 1.0, 1e-9);
    EXPECT_GE(bits + 1e-9, targets.entropy())
        << "decay_rate=" << decay_rate;
  }
}

TEST(SequenceCode, ExpectedLengthTracksLemma25Shape) {
  // E[len] <= log2(E[steps]) + O(log radius): encoding the solve step
  // in gamma costs ~2 log2(step) bits, and Jensen moves the expectation
  // inside the log.
  constexpr std::size_t n = 1 << 12;
  const baselines::DecaySchedule decay(n);
  const auto seq = rf_construction(decay, 500, n);
  const double radius = 4.0;
  const SequenceTargetDistanceCode code(seq, radius);
  const auto targets =
      crp::predict::uniform_over_ranges(info::num_ranges(n), 12);
  const double expected_steps = seq.expected_time(targets, radius);
  const auto [bits, mass] = code.expected_length(targets);
  ASSERT_NEAR(mass, 1.0, 1e-9);
  EXPECT_LE(bits, 2.0 * std::log2(expected_steps + 1.0) + 1.0 +
                      std::log2(2.0 * radius + 1.0) + 2.0);
}

TEST(TreeCode, RoundTripsEveryTarget) {
  const auto tree = RangeFindingTree::canonical(16);
  const TreeTargetDistanceCode code(tree, 1.0);
  for (std::size_t target = 1; target <= 16; ++target) {
    const auto bits = code.encode(target);
    ASSERT_TRUE(bits.has_value()) << target;
    const auto decoded = code.decode(*bits);
    ASSERT_TRUE(decoded.has_value()) << target;
    EXPECT_EQ(*decoded, target);
  }
}

TEST(TreeCode, WillardTreeCodeRespectsSourceCodingTheorem) {
  // Lemma 2.9's chain with the tree built from Willard's policy.
  constexpr std::size_t n = 1 << 16;
  const baselines::WillardPolicy willard(n);
  const auto tree = RangeFindingTree::from_policy(willard, n, 8);
  const double radius =
      std::log2(std::log2(std::log2(static_cast<double>(n)))) + 1.0;
  const TreeTargetDistanceCode code(tree, radius);
  const std::size_t num_ranges = info::num_ranges(n);
  for (double s : {0.0, 0.7, 1.5}) {
    const auto targets = crp::predict::zipf_ranges(num_ranges, s);
    const auto [bits, mass] = code.expected_length(targets);
    ASSERT_NEAR(mass, 1.0, 1e-9);
    EXPECT_GE(bits + 1e-9, targets.entropy()) << "s=" << s;
  }
}

TEST(TreeCode, ExpectedLengthCloseToExpectedDepth) {
  // Lemma 2.9: E[len] <= E[depth] + O(log log log log n) (+ the gamma
  // delimiter overhead of this executable version).
  constexpr std::size_t n = 1 << 16;
  const baselines::WillardPolicy willard(n);
  const auto tree = RangeFindingTree::from_policy(willard, n, 8);
  const double radius = 2.0;
  const TreeTargetDistanceCode code(tree, radius);
  const auto targets =
      crp::predict::uniform_over_ranges(info::num_ranges(n), 16);
  const double expected_depth = tree.expected_time(targets, radius);
  const auto [bits, mass] = code.expected_length(targets);
  ASSERT_NEAR(mass, 1.0, 1e-9);
  const double delimiter_overhead =
      2.0 * std::log2(expected_depth + 2.0) + 1.0;
  const double distance_overhead = std::log2(2.0 * radius + 1.0) + 2.0;
  EXPECT_LE(bits,
            expected_depth + delimiter_overhead + distance_overhead);
}

}  // namespace
}  // namespace crp::rangefind
