#include <cmath>

#include <gtest/gtest.h>

#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "core/advice_randomized.h"
#include "harness/measure.h"
#include "info/distribution.h"

namespace crp::core {
namespace {

TEST(AdviceBits, HighBitsAndDecodeRoundTrip) {
  // id 0b1011 in a height-4 tree.
  const auto bits = high_bits(0b1011, 4, 4);
  EXPECT_EQ(bits, (channel::BitString{true, false, true, true}));
  EXPECT_EQ(bits_to_index(bits), 0b1011u);
  const auto prefix = high_bits(0b1011, 4, 2);
  EXPECT_EQ(prefix, (channel::BitString{true, false}));
}

TEST(AdviceBits, TreeHeightIsCeilLog2) {
  EXPECT_EQ(id_tree_height(2), 1u);
  EXPECT_EQ(id_tree_height(3), 2u);
  EXPECT_EQ(id_tree_height(4), 2u);
  EXPECT_EQ(id_tree_height(5), 3u);
  EXPECT_EQ(id_tree_height(1024), 10u);
}

TEST(MinIdPrefixAdvice, ReturnsPrefixOfSmallestId) {
  const MinIdPrefixAdvice advice(16, 2);
  const std::vector<std::size_t> participants{13, 6, 9};
  // min id 6 = 0b0110; top 2 bits = 01.
  EXPECT_EQ(advice.advise(participants),
            (channel::BitString{false, true}));
  EXPECT_EQ(advice.bits(), 2u);
}

TEST(MinIdPrefixAdvice, RejectsOversizedAdvice) {
  EXPECT_THROW(MinIdPrefixAdvice(16, 5), std::invalid_argument);
}

TEST(RangeGroupAdvice, GroupsPartitionRanges) {
  const RangeGroupAdvice advice(1 << 16, 2);  // 16 ranges, 4 groups
  EXPECT_EQ(advice.num_groups(), 4u);
  std::size_t total = 0;
  for (std::size_t g = 0; g < 4; ++g) {
    const auto ranges = advice.ranges_in_group(g);
    EXPECT_EQ(ranges.size(), 4u);
    for (std::size_t r : ranges) {
      EXPECT_EQ(advice.group_of_range(r), g);
    }
    total += ranges.size();
  }
  EXPECT_EQ(total, 16u);
}

TEST(RangeGroupAdvice, UnevenPartitionCoversEverything) {
  const RangeGroupAdvice advice(1 << 10, 2);  // 10 ranges, 4 groups
  std::vector<int> seen(11, 0);
  for (std::size_t g = 0; g < 4; ++g) {
    for (std::size_t r : advice.ranges_in_group(g)) ++seen[r];
  }
  for (std::size_t r = 1; r <= 10; ++r) EXPECT_EQ(seen[r], 1);
}

TEST(RangeGroupAdvice, AdviceIdentifiesTrueGroup) {
  const RangeGroupAdvice advice(1 << 16, 3);
  // k = 300 participants -> range ceil(log2 300) = 9.
  std::vector<std::size_t> participants(300);
  for (std::size_t i = 0; i < 300; ++i) participants[i] = i;
  const auto bits = advice.advise(participants);
  EXPECT_EQ(bits_to_index(bits), advice.group_of_range(9));
}

TEST(FullIdAdvice, EnablesOneRoundResolution) {
  constexpr std::size_t n = 64;
  const FullIdAdvice advice(n);
  // One-round protocol: transmit iff your id equals the advised id.
  class AdvisedIdProtocol final : public channel::DeterministicProtocol {
   public:
    bool transmits(std::size_t player_id, const channel::BitString& bits,
                   std::size_t round,
                   std::span<const channel::Feedback>) const override {
      return round == 0 && player_id == bits_to_index(bits);
    }
    std::string name() const override { return "advised-id"; }
  };
  const AdvisedIdProtocol protocol;
  auto rng = channel::make_rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    const auto participants = harness::random_participant_set(n, 7, rng);
    const auto result = channel::run_deterministic(
        protocol, advice.advise(participants), participants, false);
    ASSERT_TRUE(result.solved);
    EXPECT_EQ(result.rounds, 1u);
  }
}

// ---- Deterministic no-CD: SubtreeScanProtocol ----

TEST(SubtreeScan, ResolvesWithinSubtreeSizeRounds) {
  constexpr std::size_t n = 256;
  for (std::size_t b : {0ul, 2ul, 4ul, 8ul}) {
    const SubtreeScanProtocol protocol(n, b);
    const MinIdPrefixAdvice advice(n, b);
    auto rng = channel::make_rng(73 + b);
    for (int trial = 0; trial < 100; ++trial) {
      const auto participants = harness::random_participant_set(n, 9, rng);
      const auto bits = advice.advise(participants);
      const auto result = channel::run_deterministic(
          protocol, bits, participants, false, {.max_rounds = 2 * n});
      ASSERT_TRUE(result.solved) << "b=" << b;
      EXPECT_LE(result.rounds, protocol.subtree_size()) << "b=" << b;
      // The winner is the minimum active id (the advice's target).
      EXPECT_EQ(*result.winner,
                *std::min_element(participants.begin(),
                                  participants.end()));
    }
  }
}

TEST(SubtreeScan, FullAdviceMeansOneRound) {
  constexpr std::size_t n = 256;
  const SubtreeScanProtocol protocol(n, 8);
  const MinIdPrefixAdvice advice(n, 8);
  const std::vector<std::size_t> participants{200, 201, 250};
  const auto result = channel::run_deterministic(
      protocol, advice.advise(participants), participants, false);
  ASSERT_TRUE(result.solved);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(SubtreeScan, WorstCaseMatchesTheorem34Shape) {
  // t(n) ~ n^{1-alpha} for b = alpha log n: halving the advice about
  // doubles the worst case.
  constexpr std::size_t n = 1 << 10;
  std::vector<double> worst;
  for (std::size_t b : {2ul, 4ul, 6ul}) {
    const SubtreeScanProtocol protocol(n, b);
    const MinIdPrefixAdvice advice(n, b);
    worst.push_back(harness::worst_case_deterministic_rounds(
        protocol, advice, n, /*k=*/4, false, /*probes=*/200, /*seed=*/77));
  }
  EXPECT_NEAR(worst[0] / worst[1], 4.0, 1.0);
  EXPECT_NEAR(worst[1] / worst[2], 4.0, 1.0);
}

// ---- Deterministic CD: TreeDescentCdProtocol ----

TEST(TreeDescentCd, ResolvesWithinHeightMinusAdviceRounds) {
  constexpr std::size_t n = 1 << 10;
  for (std::size_t b : {0ul, 3ul, 6ul, 10ul}) {
    const TreeDescentCdProtocol protocol(n, b);
    const MinIdPrefixAdvice advice(n, b);
    auto rng = channel::make_rng(79 + b);
    for (int trial = 0; trial < 100; ++trial) {
      const auto participants =
          harness::random_participant_set(n, 17, rng);
      const auto bits = advice.advise(participants);
      const auto result = channel::run_deterministic(
          protocol, bits, participants, true, {.max_rounds = 4 * n});
      ASSERT_TRUE(result.solved) << "b=" << b;
      EXPECT_LE(result.rounds, protocol.max_rounds()) << "b=" << b;
    }
  }
}

TEST(TreeDescentCd, ExhaustivePairsForSmallNetwork) {
  constexpr std::size_t n = 16;
  constexpr std::size_t b = 2;
  const TreeDescentCdProtocol protocol(n, b);
  const MinIdPrefixAdvice advice(n, b);
  for (std::size_t x = 0; x < n; ++x) {
    for (std::size_t y = x + 1; y < n; ++y) {
      const std::vector<std::size_t> participants{x, y};
      const auto result = channel::run_deterministic(
          protocol, advice.advise(participants), participants, true,
          {.max_rounds = 64});
      ASSERT_TRUE(result.solved) << x << "," << y;
      EXPECT_LE(result.rounds, protocol.max_rounds()) << x << "," << y;
    }
  }
}

// ---- Randomized no-CD: truncated decay ----

TEST(TruncatedDecay, SweepsOnlyAdvisedRanges) {
  const TruncatedDecaySchedule schedule({3, 4, 5});
  EXPECT_DOUBLE_EQ(schedule.probability(0), std::exp2(-3.0));
  EXPECT_DOUBLE_EQ(schedule.probability(1), std::exp2(-4.0));
  EXPECT_DOUBLE_EQ(schedule.probability(2), std::exp2(-5.0));
  EXPECT_DOUBLE_EQ(schedule.probability(3), std::exp2(-3.0));
  EXPECT_EQ(schedule.sweep_length(), 3u);
}

TEST(TruncatedDecay, AdviceShrinksExpectedRounds) {
  // Theorem 3.6 shape: expected rounds ~ log n / 2^b.
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 700;  // range 10
  std::vector<double> means;
  for (std::size_t b : {0ul, 1ul, 2ul, 3ul}) {
    const RangeGroupAdvice advice(n, b);
    std::vector<std::size_t> participants(k);
    for (std::size_t i = 0; i < k; ++i) participants[i] = i;
    const std::size_t group = bits_to_index(advice.advise(participants));
    const TruncatedDecaySchedule schedule(advice.ranges_in_group(group));
    const auto m = harness::measure_uniform_no_cd_fixed_k(
        schedule, k, 4000, /*seed=*/83, 1 << 14);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
    means.push_back(m.rounds.mean);
  }
  // Monotone improvement with more advice.
  for (std::size_t i = 1; i < means.size(); ++i) {
    EXPECT_LE(means[i], means[i - 1] * 1.15) << "b=" << i;
  }
  // Roughly the 2^b shape between the extremes.
  EXPECT_GT(means[0] / means[3], 2.0);
}

// ---- Randomized CD: truncated Willard ----

TEST(TruncatedWillard, SingleRangeGroupIsConstantTime) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 700;  // range 10
  const RangeGroupAdvice advice(n, 4);  // 16 groups of 1 range each
  std::vector<std::size_t> participants(k);
  for (std::size_t i = 0; i < k; ++i) participants[i] = i;
  const std::size_t group = bits_to_index(advice.advise(participants));
  const TruncatedWillardPolicy policy(advice.ranges_in_group(group));
  const auto m = harness::measure_uniform_cd_fixed_k(policy, k, 4000,
                                                     /*seed=*/89, 1 << 12);
  EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
  EXPECT_LT(m.rounds.mean, 5.0);
}

TEST(TruncatedWillard, AdviceShrinksSearchDepth) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 700;
  std::vector<double> means;
  for (std::size_t b : {0ul, 2ul, 4ul}) {
    const RangeGroupAdvice advice(n, b);
    std::vector<std::size_t> participants(k);
    for (std::size_t i = 0; i < k; ++i) participants[i] = i;
    const std::size_t group = bits_to_index(advice.advise(participants));
    const TruncatedWillardPolicy policy(advice.ranges_in_group(group));
    const auto m = harness::measure_uniform_cd_fixed_k(
        policy, k, 4000, /*seed=*/97, 1 << 12);
    EXPECT_DOUBLE_EQ(m.success_rate, 1.0);
    means.push_back(m.rounds.mean);
  }
  EXPECT_LT(means[2], means[0]);
}

TEST(TruncatedProtocols, RejectEmptyGroups) {
  EXPECT_THROW(TruncatedDecaySchedule({}), std::invalid_argument);
  EXPECT_THROW(TruncatedWillardPolicy({}), std::invalid_argument);
}

}  // namespace
}  // namespace crp::core
