// crp_shard: crash-safe multi-process sweep shard driver and merge
// tool.
//
// Partitions a sweep grid's cells across processes, journals progress
// cell by cell so a killed worker can resume without losing completed
// work, and reassembles the per-shard artifacts into exactly the CSV
// a single-process run would have written — byte for byte
// (harness/shard.h + harness/checkpoint.h are the library layers; the
// CI shard-smoke and crash-resume steps diff the outputs).
//
// Usage:
//   crp_shard run    [--grid table1 | --grid-spec FILE] [--n N]
//                    [--trials T] [--seed S]
//                    [--threads T] [--cd-engine simulate|tree]
//                    [--shard I/N] [--cells B:E] [--out FILE]
//                    [--out-dir DIR] [--stop-after-cells K]
//   crp_shard resume (same flags as run; sharded only)
//   crp_shard plan   [--grid table1 | --grid-spec FILE] [--n N]
//                    [--trials T] [--seed S] [--shards N] [--json]
//   crp_shard merge  --out FILE [--allow-partial] MANIFEST.json...
//   crp_shard supervise --out FILE --out-dir DIR [grid/sweep flags]
//                    [--workers N] [--retry-budget K] [--backoff-ms MS]
//                    [--backoff-max-ms MS] [--worker-timeout-ms MS]
//                    [--kill-grace-ms MS] [--resume]
//
// --grid-spec swaps the compiled-in grid for a declarative
// crp-grid-spec-v1 JSON file (harness/gridspec.h, grammar in
// docs/GRIDSPEC.md): the spec's cells flow through the same
// fingerprint/journal/manifest machinery, so a spec that reproduces a
// built-in grid shards and merges byte-identically to it. The spec
// pins its own network size, so --grid-spec excludes --grid and --n.
//
// plan prints the shard → cell-range map for --shards N workers — per
// cell: global index, algorithm, size source, budget, trials, pinned
// seed stream, and the derived per-cell seed — without executing
// anything; --json emits the same plan as a crp-shard-plan-v1
// document for external schedulers. The plan is exactly what
// `run --shard i/N` will execute: both sit on plan_shards().
//
// run without --shard/--cells executes the whole grid in this process
// and writes the sweep CSV to --out (default: stdout) — the reference
// a sharded run must reproduce. With --shard i/N (or an explicit
// --cells begin:end range) it executes only that slice, journaling
// each completed cell durably (append + fsync) before starting the
// next, and finishes by writing a self-describing artifact set into
// --out-dir:
//
//   DIR/shard-<i>-of-<N>.journal        per-cell progress journal
//   DIR/shard-<i>-of-<N>.csv            write_sweep_csv rows (slice only)
//   DIR/shard-<i>-of-<N>.manifest.json  grid hash, master seed, trials,
//                                       cell range, per-cell seeds
//
// All final artifacts are written via atomic temp-file + rename +
// fsync: a crash or disk-full mid-write never leaves a half-written
// file under a final name.
//
// resume picks up a killed or interrupted sharded run: it validates
// the journal against the re-planned shard (grid fingerprint, master
// seed, trials, engines, cell range, per-cell seeds), truncates a
// detectably-torn tail left by a mid-write kill, replays the
// journaled cells verbatim, and executes only the remainder. The
// resumed artifacts are byte-identical to an uninterrupted run.
//
// merge validates the manifests against each other (same grid hash,
// seed, and trials; cell ranges tile the grid with no gaps or
// overlaps; per-row cell seeds match the manifests) and writes the
// concatenated CSV in cell order. With --allow-partial, gaps degrade
// gracefully: the present rows still merge in cell order and a
// machine-readable FILE.partial.json records the missing cell ranges
// (format crp-partial-merge-v1) — the work-list a scheduler feeds
// back as `crp_shard run --cells B:E` invocations.
//
// supervise is the self-healing service layer (harness/supervisor.h,
// docs/OPERATIONS.md): it plans the grid into one range per worker,
// re-execs this binary as `run`/`resume --cells B:E` subprocesses,
// reacts to the exit-code taxonomy below (75 → resume now, 4 → retry
// with deterministic exponential backoff + seeded jitter, 3 →
// bisect/quarantine, crash → resume after backoff), enforces a
// per-worker wall-clock timeout (SIGTERM, then SIGKILL after a grace
// period), and loops partial-merge missing ranges into `--cells`
// backfill jobs until only quarantined cells are absent. It writes
// the merged CSV to --out plus a crp-quarantine-v1 report at
// --out.quarantine.json, and journals its own bisection/quarantine
// decisions in DIR/supervisor.journal so `supervise --resume`
// restarts the fleet idempotently.
//
// Signals: on SIGINT/SIGTERM/SIGHUP a sharded run finishes the
// in-flight cell, flushes the journal, and exits with code 75 —
// external schedulers can requeue a `resume` without parsing stderr
// (SIGHUP included, so workers detached from a dying terminal stay
// resumable). supervise reacts to the same signals by SIGTERMing its
// workers and exiting 75 once they stop. --stop-after-cells K stops
// the same way after K freshly executed cells (bounded work quanta).
//
// Fault injection (test seams, inert by default): the CRP_FAULT_*
// env vars make a *sharded worker* fail deterministically so the
// supervisor's recovery paths can be driven end-to-end —
//   CRP_FAULT_CRASH_AFTER_CELLS=N   raise SIGKILL after N freshly
//                                   executed cells
//   CRP_FAULT_SLEEP_MS_IN_CELL=MS[@CELL]
//                                   sleep MS ms at the start of every
//                                   cell (or only global cell CELL),
//                                   ignoring stop signals meanwhile
//   CRP_FAULT_EXIT4_ON_APPEND=N     injected IoError (exit 4) on the
//                                   Nth journal append of the process
//   CRP_FAULT_POISON_CELLS=I[,J..]  validation error (exit 3) when
//                                   asked to execute a listed cell
//
// Exit codes (stable; asserted by tests/crp_shard_cli_test.py):
//   0   success
//   1   internal error (a bug — not retryable)
//   2   usage error (bad flags)
//   3   validation error (corrupt or mismatched inputs: manifests,
//       journals, CSVs, grid mismatches — retry will not help)
//   4   I/O error (open/write/fsync failures — retry may help)
//   75  resumable interrupt (clean stop mid-grid; journal flushed,
//       `crp_shard resume` continues — the scheduler requeue code)
//
// Grids:
//   table1   the paper's Table 1 upper-bound grid: per entropy point
//            (m = 1, 2, 4, ... ranges of uniform condensed mass over
//            |L(n)| ranges), the Section 2.5 likelihood-ordered no-CD
//            schedule and the Section 2.6 coded-search CD policy, each
//            against that point's lifted distribution. --n scales the
//            network (and with it the number of entropy points).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "channel/kernels/kernels.h"
#include "channel/rng.h"
#include "harness/checkpoint.h"
#include "harness/csv.h"
#include "harness/gridspec.h"
#include "harness/grids.h"
#include "harness/shard.h"
#include "harness/supervisor.h"
#include "harness/sweep.h"

namespace {

// The documented exit-code taxonomy (see the header comment).
constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitValidation = 3;
constexpr int kExitIo = 4;
constexpr int kExitResumable = 75;  // EX_TEMPFAIL: retryable by design

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void handle_stop_signal(int) { g_interrupted = 1; }

void install_stop_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  // SIGHUP too: a worker whose terminal (or supervising session) dies
  // must stop resumably, not take the default terminate-without-flush.
  std::signal(SIGHUP, handle_stop_signal);
}

struct Options {
  std::string mode;
  std::string grid = "table1";
  std::string grid_spec;
  std::size_t n = 1 << 16;
  std::size_t trials = 6000;
  std::uint64_t seed = 20210526;
  std::size_t threads = 0;
  std::string cd_engine = "simulate";
  bool sharded = false;
  bool shard_flag = false;
  bool cells_flag = false;
  bool grid_flag = false;
  bool n_flag = false;
  bool allow_partial = false;
  bool plan_json = false;
  std::size_t plan_shard_count = 1;
  std::size_t stop_after_cells = 0;
  crp::harness::ShardOptions shard;
  std::string out;
  std::string out_dir;
  std::vector<std::string> manifests;
  /// supervise mode only.
  std::string argv0;
  std::size_t workers = 3;
  bool supervise_resume = false;
  crp::harness::RetryPolicyConfig retry;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr
      << "crp_shard: " << message << "\n"
      << "usage: crp_shard run    [--grid table1 | --grid-spec FILE]"
         " [--n N] [--trials T]"
         " [--seed S] [--threads T] [--cd-engine simulate|tree]"
         " [--shard I/N] [--cells B:E] [--out FILE] [--out-dir DIR]"
         " [--stop-after-cells K]\n"
         "       crp_shard resume (same flags as run; sharded only)\n"
         "       crp_shard plan   [--grid table1 | --grid-spec FILE]"
         " [--n N] [--trials T] [--seed S] [--shards N] [--json]\n"
         "       crp_shard merge  --out FILE [--allow-partial]"
         " MANIFEST.json...\n"
         "       crp_shard supervise --out FILE --out-dir DIR"
         " [grid/sweep flags] [--workers N] [--retry-budget K]"
         " [--backoff-ms MS] [--backoff-max-ms MS] [--worker-timeout-ms MS]"
         " [--kill-grace-ms MS] [--resume]\n"
         "exit codes: 0 ok, 2 usage, 3 validation, 4 I/O,"
         " 75 resumable interrupt\n";
  std::exit(kExitUsage);
}

std::size_t parse_size(const std::string& value, const std::string& flag) {
  // Strict digits only: std::stoull would silently wrap "-1" to
  // 2^64 - 1 instead of rejecting it.
  const auto parsed = crp::harness::parse_csv_unsigned(value);
  if (!parsed) {
    usage_error("expected a non-negative integer for " + flag + ", got \"" +
                value + "\"");
  }
  return static_cast<std::size_t>(*parsed);
}

Options parse_args(int argc, char** argv) {
  Options options;
  if (argc < 2) {
    usage_error("missing mode (run, resume, plan, merge, or supervise)");
  }
  options.argv0 = argv[0];
  options.mode = argv[1];
  if (options.mode != "run" && options.mode != "resume" &&
      options.mode != "plan" && options.mode != "merge" &&
      options.mode != "supervise") {
    usage_error("unknown mode \"" + options.mode + "\"");
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--grid") {
      options.grid = next();
      options.grid_flag = true;
    } else if (arg == "--grid-spec") {
      options.grid_spec = next();
      if (options.grid_spec.empty()) {
        usage_error("--grid-spec needs a non-empty file path");
      }
    } else if (arg == "--n") {
      options.n = parse_size(next(), arg);
      options.n_flag = true;
    } else if (arg == "--shards") {
      if (options.mode != "plan") {
        usage_error("--shards applies to plan mode only (run/resume "
                    "take --shard I/N)");
      }
      options.plan_shard_count = parse_size(next(), arg);
      if (options.plan_shard_count == 0) {
        usage_error("--shards must be >= 1");
      }
    } else if (arg == "--json") {
      if (options.mode != "plan") {
        usage_error("--json applies to plan mode only");
      }
      options.plan_json = true;
    } else if (arg == "--trials") {
      options.trials = parse_size(next(), arg);
    } else if (arg == "--seed") {
      options.seed = parse_size(next(), arg);
    } else if (arg == "--threads") {
      options.threads = parse_size(next(), arg);
    } else if (arg == "--cd-engine") {
      options.cd_engine = next();
    } else if (arg == "--stop-after-cells") {
      options.stop_after_cells = parse_size(next(), arg);
      if (options.stop_after_cells == 0) {
        usage_error("--stop-after-cells must be >= 1");
      }
    } else if (arg == "--allow-partial") {
      options.allow_partial = true;
    } else if (arg == "--workers" || arg == "--retry-budget" ||
               arg == "--backoff-ms" || arg == "--backoff-max-ms" ||
               arg == "--worker-timeout-ms" || arg == "--kill-grace-ms") {
      if (options.mode != "supervise") {
        usage_error(arg + " applies to supervise mode only");
      }
      const std::size_t value = parse_size(next(), arg);
      if (arg == "--workers") {
        if (value == 0) usage_error("--workers must be >= 1");
        options.workers = value;
      } else if (arg == "--retry-budget") {
        options.retry.retry_budget = value;
      } else if (arg == "--backoff-ms") {
        options.retry.base_backoff_ms = static_cast<std::int64_t>(value);
      } else if (arg == "--backoff-max-ms") {
        options.retry.max_backoff_ms = static_cast<std::int64_t>(value);
      } else if (arg == "--worker-timeout-ms") {
        options.retry.worker_timeout_ms = static_cast<std::int64_t>(value);
      } else {
        options.retry.kill_grace_ms = static_cast<std::int64_t>(value);
      }
    } else if (arg == "--resume") {
      if (options.mode != "supervise") {
        usage_error("--resume applies to supervise mode only (workers "
                    "use the `resume` mode)");
      }
      options.supervise_resume = true;
    } else if (arg == "--shard") {
      const std::string spec = next();
      const auto slash = spec.find('/');
      if (slash == std::string::npos) {
        usage_error("--shard expects I/N, got \"" + spec + "\"");
      }
      options.sharded = true;
      options.shard_flag = true;
      options.shard.shard_index =
          parse_size(spec.substr(0, slash), "--shard index");
      options.shard.shard_count =
          parse_size(spec.substr(slash + 1), "--shard count");
    } else if (arg == "--cells") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        usage_error("--cells expects BEGIN:END, got \"" + spec + "\"");
      }
      options.sharded = true;
      options.cells_flag = true;
      options.shard.cell_begin =
          parse_size(spec.substr(0, colon), "--cells begin");
      options.shard.cell_end =
          parse_size(spec.substr(colon + 1), "--cells end");
    } else if (arg == "--out") {
      options.out = next();
    } else if (arg == "--out-dir") {
      options.out_dir = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the header comment of tools/crp_shard.cpp\n";
      std::exit(kExitOk);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown argument " + arg);
    } else {
      options.manifests.push_back(arg);
    }
  }
  const bool executes = options.mode == "run" || options.mode == "resume";
  const bool plans = options.mode == "plan";
  const bool supervises = options.mode == "supervise";
  if ((executes || plans || supervises) && !options.manifests.empty()) {
    usage_error(options.mode + " mode takes no positional arguments");
  }
  if (!options.grid_spec.empty() && options.mode == "merge") {
    usage_error("--grid-spec applies to run, resume, plan, and supervise "
                "modes");
  }
  if (supervises && options.sharded) {
    usage_error("supervise plans the shard split itself — use --workers N, "
                "not --shard/--cells");
  }
  if (supervises && options.stop_after_cells != 0) {
    usage_error("--stop-after-cells applies to sharded workers, not "
                "supervise");
  }
  if (supervises && (options.out.empty() || options.out_dir.empty())) {
    usage_error("supervise needs --out FILE (merged CSV) and --out-dir DIR "
                "(worker artifacts + supervisor journal)");
  }
  if (supervises &&
      options.retry.max_backoff_ms < options.retry.base_backoff_ms) {
    usage_error("--backoff-max-ms must be >= --backoff-ms");
  }
  if (!options.grid_spec.empty() && options.grid_flag) {
    usage_error("--grid and --grid-spec are mutually exclusive (the spec "
                "is the grid)");
  }
  if (!options.grid_spec.empty() && options.n_flag) {
    usage_error("--n conflicts with --grid-spec (the spec pins its own "
                "\"n\")");
  }
  if (plans && options.sharded) {
    usage_error("plan mode maps every shard at once — use --shards N, "
                "not --shard/--cells");
  }
  if (plans && (!options.out.empty() || !options.out_dir.empty())) {
    usage_error("plan mode executes nothing and writes no artifacts — "
                "drop --out/--out-dir");
  }
  if (plans && options.stop_after_cells != 0) {
    usage_error("--stop-after-cells applies to sharded runs, not plan");
  }
  if (options.mode == "merge" && options.manifests.empty()) {
    usage_error("merge mode needs at least one manifest path");
  }
  if (options.mode == "merge" && options.out.empty()) {
    usage_error("merge mode needs --out FILE");
  }
  if (options.allow_partial && options.mode != "merge") {
    usage_error("--allow-partial applies to merge mode only");
  }
  if (options.shard_flag && options.cells_flag) {
    // plan_shards would take the explicit-range branch and silently
    // record the unrelated --shard values in the manifest.
    usage_error("--shard and --cells are mutually exclusive");
  }
  if (options.mode == "resume" && !options.sharded) {
    usage_error("resume mode needs --shard I/N or --cells B:E (only "
                "sharded runs are journaled)");
  }
  if (options.stop_after_cells != 0 && !options.sharded) {
    usage_error("--stop-after-cells applies to sharded runs (they "
                "checkpoint; a whole-grid run has no journal to resume)");
  }
  if (options.sharded && !options.out.empty()) {
    usage_error("--out applies to whole-grid runs; sharded runs write "
                "their artifact set into --out-dir");
  }
  if ((executes || plans || supervises) && options.grid_spec.empty() &&
      options.n < 4) {
    usage_error("--n must be >= 4");
  }
  return options;
}

/// A grid plus whatever storage its cells reference — the entropy
/// points of a built-in grid or the parsed spec of a --grid-spec one;
/// keep alive until the sweep is done. The built-in cells come from
/// the shared reference builder (harness/grids.h), so "table1" here is
/// exactly the grid bench_table1 measures.
struct OwnedGrid {
  std::string label;
  std::vector<crp::harness::Table1EntropyPoint> points;
  crp::harness::GridSpec spec;
  std::vector<crp::harness::SweepCell> cells;
};

OwnedGrid build_grid(const Options& options) {
  OwnedGrid owned;
  if (!options.grid_spec.empty()) {
    owned.spec = crp::harness::read_grid_spec_file(options.grid_spec);
    owned.cells = owned.spec.cells;
    owned.label = "spec " + options.grid_spec;
    if (!owned.spec.name.empty()) {
      owned.label += " (\"" + owned.spec.name + "\")";
    }
    return owned;
  }
  if (options.grid != "table1") {
    usage_error("unknown grid \"" + options.grid + "\"");
  }
  owned.points = crp::harness::table1_entropy_points(options.n);
  owned.cells = crp::harness::table1_upper_bound_grid(owned.points).cells();
  owned.label =
      "built-in \"table1\" (n = " + std::to_string(options.n) + ")";
  return owned;
}

std::string hex(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << value;
  return out.str();
}

/// The shard → cell map for --shards N workers, with nothing executed:
/// everything a scheduler needs to fan out `run --shard i/N` jobs and
/// predict their artifacts. Both output formats carry, per cell, the
/// global index, the pinned seed stream, and the derived per-cell seed
/// (the cell_seed column the shard CSVs will record).
int plan_mode(const Options& options) {
  namespace ch = crp::harness;
  const OwnedGrid grid = build_grid(options);
  const std::span<const ch::SweepCell> cells(grid.cells);
  const std::uint64_t fingerprint = ch::grid_fingerprint(cells);

  std::vector<ch::ShardPlan> plans;
  plans.reserve(options.plan_shard_count);
  for (std::size_t s = 0; s < options.plan_shard_count; ++s) {
    ch::ShardOptions shard;
    shard.shard_index = s;
    shard.shard_count = options.plan_shard_count;
    plans.push_back(ch::plan_shards(cells, shard));
  }

  const auto cell_trials = [&](const ch::SweepCell& cell) {
    return cell.trials != 0 ? cell.trials : options.trials;
  };

  std::ostringstream out;
  if (options.plan_json) {
    out << "{\n"
        << "  \"format\": \"crp-shard-plan-v1\",\n"
        << "  \"grid\": \"" << ch::json_escape(grid.label) << "\",\n"
        << "  \"total_cells\": " << grid.cells.size() << ",\n"
        << "  \"grid_hash\": \"" << hex(fingerprint) << "\",\n"
        << "  \"master_seed\": \"" << hex(options.seed) << "\",\n"
        << "  \"default_trials\": " << options.trials << ",\n"
        << "  \"shard_count\": " << options.plan_shard_count << ",\n"
        << "  \"shards\": [";
    for (std::size_t s = 0; s < plans.size(); ++s) {
      const ch::ShardPlan& plan = plans[s];
      out << (s == 0 ? "\n" : ",\n")
          << "    {\n"
          << "      \"shard_index\": " << plan.shard_index << ",\n"
          << "      \"cell_begin\": " << plan.cell_begin << ",\n"
          << "      \"cell_end\": " << plan.cell_end << ",\n"
          << "      \"cells\": [";
      for (std::size_t j = 0; j < plan.cells.size(); ++j) {
        const ch::SweepCell& cell = plan.cells[j];
        out << (j == 0 ? "\n" : ",\n")
            << "        {\n"
            << "          \"cell_index\": " << (plan.cell_begin + j) << ",\n"
            << "          \"algorithm\": \""
            << ch::json_escape(cell.algorithm.name) << "\",\n"
            << "          \"sizes\": \"" << ch::json_escape(cell.sizes.name)
            << "\",\n"
            << "          \"budget\": " << cell.max_rounds << ",\n"
            << "          \"trials\": " << cell_trials(cell) << ",\n"
            << "          \"seed_stream\": \"" << hex(cell.seed_stream)
            << "\",\n"
            << "          \"cell_seed\": \""
            << hex(crp::channel::derive_stream_seed(options.seed,
                                                    cell.seed_stream))
            << "\"\n"
            << "        }";
      }
      out << "\n      ]\n    }";
    }
    out << "\n  ]\n}\n";
  } else {
    out << "grid: " << grid.label << "\n"
        << "cells: " << grid.cells.size() << ", fingerprint "
        << hex(fingerprint) << ", master seed " << hex(options.seed)
        << ", default trials " << options.trials << ", shards "
        << options.plan_shard_count << "\n";
    for (const ch::ShardPlan& plan : plans) {
      out << "shard " << plan.shard_index << "/" << plan.shard_count
          << ": cells [" << plan.cell_begin << ", " << plan.cell_end
          << ")\n";
      for (std::size_t j = 0; j < plan.cells.size(); ++j) {
        const ch::SweepCell& cell = plan.cells[j];
        out << "  cell " << (plan.cell_begin + j) << ": algorithm \""
            << cell.algorithm.name << "\", sizes \"" << cell.sizes.name
            << "\", budget " << cell.max_rounds << ", trials "
            << cell_trials(cell) << ", seed_stream "
            << hex(cell.seed_stream) << ", cell_seed "
            << hex(crp::channel::derive_stream_seed(options.seed,
                                                    cell.seed_stream))
            << "\n";
      }
    }
  }
  std::cout << out.str();
  return kExitOk;
}

crp::harness::SweepOptions sweep_options(const Options& options) {
  crp::harness::SweepOptions sweep{.trials = options.trials,
                                   .seed = options.seed,
                                   .threads = options.threads};
  if (options.cd_engine == "tree") {
    sweep.cd_engine = crp::harness::CdEngine::kHistoryTree;
  } else if (options.cd_engine != "simulate") {
    usage_error("unknown --cd-engine \"" + options.cd_engine +
                "\" (simulate|tree)");
  }
  return sweep;
}

// ---------------------------------------------------------------------------
// CRP_FAULT_* fault injection (test seams; inert unless the env vars
// are set — see the header comment for the catalogue)

struct FaultPlan {
  std::size_t crash_after_cells = 0;  // 0 = off
  std::int64_t sleep_ms = 0;          // 0 = off
  bool sleep_every_cell = false;
  std::size_t sleep_cell = 0;
  std::size_t exit4_on_append = 0;  // 0 = off; 1-based append index
  std::vector<std::size_t> poison_cells;

  bool active() const {
    return crash_after_cells != 0 || sleep_ms != 0 || exit4_on_append != 0 ||
           !poison_cells.empty();
  }
};

std::size_t parse_fault_uint(const char* name, const std::string& value) {
  const auto parsed = crp::harness::parse_csv_unsigned(value);
  if (!parsed) {
    usage_error(std::string(name) + " expects a non-negative integer, got \"" +
                value + "\"");
  }
  return static_cast<std::size_t>(*parsed);
}

FaultPlan parse_fault_env() {
  FaultPlan plan;
  if (const char* raw = std::getenv("CRP_FAULT_CRASH_AFTER_CELLS")) {
    plan.crash_after_cells = parse_fault_uint("CRP_FAULT_CRASH_AFTER_CELLS",
                                              raw);
    if (plan.crash_after_cells == 0) {
      usage_error("CRP_FAULT_CRASH_AFTER_CELLS must be >= 1");
    }
  }
  if (const char* raw = std::getenv("CRP_FAULT_SLEEP_MS_IN_CELL")) {
    const std::string value(raw);
    const auto at = value.find('@');
    plan.sleep_ms = static_cast<std::int64_t>(parse_fault_uint(
        "CRP_FAULT_SLEEP_MS_IN_CELL", value.substr(0, at)));
    if (at == std::string::npos) {
      plan.sleep_every_cell = true;
    } else {
      plan.sleep_cell = parse_fault_uint("CRP_FAULT_SLEEP_MS_IN_CELL cell",
                                         value.substr(at + 1));
    }
  }
  if (const char* raw = std::getenv("CRP_FAULT_EXIT4_ON_APPEND")) {
    plan.exit4_on_append = parse_fault_uint("CRP_FAULT_EXIT4_ON_APPEND", raw);
    if (plan.exit4_on_append == 0) {
      usage_error("CRP_FAULT_EXIT4_ON_APPEND must be >= 1");
    }
  }
  if (const char* raw = std::getenv("CRP_FAULT_POISON_CELLS")) {
    std::string value(raw);
    std::size_t start = 0;
    while (start <= value.size()) {
      const auto comma = value.find(',', start);
      const std::string field =
          value.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start);
      plan.poison_cells.push_back(
          parse_fault_uint("CRP_FAULT_POISON_CELLS", field));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return plan;
}

/// Append sink that throws an injected IoError on the Nth append of
/// this process — the worker exits 4 with the cell unjournaled,
/// exactly like a disk that filled mid-record.
class FaultyAppendSink final : public crp::harness::CheckpointSink {
 public:
  FaultyAppendSink(std::unique_ptr<crp::harness::CheckpointSink> inner,
                   std::size_t fail_on)
      : inner_(std::move(inner)), fail_on_(fail_on) {}
  void append(std::string_view bytes) override {
    if (++appends_ == fail_on_) {
      throw crp::harness::IoError(
          "CRP_FAULT_EXIT4_ON_APPEND: injected I/O failure on append " +
          std::to_string(appends_));
    }
    inner_->append(bytes);
  }
  void sync() override { inner_->sync(); }

 private:
  std::unique_ptr<crp::harness::CheckpointSink> inner_;
  std::size_t fail_on_;
  std::size_t appends_ = 0;
};

/// Arms the parsed fault plan on a worker's checkpoint options. The
/// executed-cell counter lives in the returned shared state, captured
/// by the hooks.
void arm_faults(const FaultPlan& faults,
                crp::harness::CheckpointRunOptions& checkpoint) {
  if (!faults.active()) return;
  checkpoint.on_cell_start = [faults](std::size_t cell) {
    for (const std::size_t poison : faults.poison_cells) {
      if (poison == cell) {
        throw std::invalid_argument(
            "CRP_FAULT_POISON_CELLS: cell " + std::to_string(cell) +
            " is poisoned");
      }
    }
    if (faults.sleep_ms > 0 &&
        (faults.sleep_every_cell || faults.sleep_cell == cell)) {
      // Deliberately deaf to stop signals: the worker must stay hung
      // through SIGTERM so the supervisor's SIGKILL escalation has
      // something real to escalate against.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(faults.sleep_ms);
      while (std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  if (faults.crash_after_cells != 0) {
    auto executed = std::make_shared<std::size_t>(0);
    const std::size_t limit = faults.crash_after_cells;
    checkpoint.on_cell_executed = [executed, limit](std::size_t) {
      if (++*executed >= limit) {
        std::raise(SIGKILL);  // a real hard crash: nothing else flushes
      }
    };
  }
  if (faults.exit4_on_append != 0) {
    const std::size_t fail_on = faults.exit4_on_append;
    checkpoint.sink_factory = [fail_on](const std::string& path) {
      return std::make_unique<FaultyAppendSink>(
          crp::harness::open_file_checkpoint_sink(path), fail_on);
    };
  }
}

int run_mode(const Options& options) {
  const OwnedGrid grid = build_grid(options);
  const auto sweep = sweep_options(options);

  // Provenance on stderr (stdout may carry CSV): which ISA tier the
  // batch kernels dispatched to. Tiers are bit-identical, so shards
  // from heterogeneous hosts still merge byte-for-byte — this line
  // lets a fleet audit that claim per artifact.
  std::cerr << "crp_shard: kernel tier " << crp::channel::kernel_tier_name()
            << "\n";

  if (!options.sharded) {
    // The monolithic reference: the whole grid in one process.
    const auto results = crp::harness::run_sweep(
        std::span<const crp::harness::SweepCell>(grid.cells), sweep);
    std::ostringstream csv;
    crp::harness::write_sweep_csv(csv, results);
    if (options.out.empty()) {
      std::cout << csv.str();
    } else {
      crp::harness::atomic_write_file(options.out, csv.str());
      std::cerr << "wrote " << results.size() << " cells to " << options.out
                << "\n";
    }
    return kExitOk;
  }

  if (options.out_dir.empty()) {
    usage_error("sharded runs need --out-dir DIR for the artifact set");
  }
  // Explicit --cells runs all share shard_index 0 of 1, so their
  // artifacts are named by the cell range instead — successive
  // hand-balanced slices into one directory must not overwrite each
  // other.
  const bool explicit_range =
      options.shard.cell_begin != crp::harness::ShardOptions::kAutoRange;
  const std::string stem =
      explicit_range
          ? "shard-cells-" + std::to_string(options.shard.cell_begin) + "-" +
                std::to_string(options.shard.cell_end)
          : "shard-" + std::to_string(options.shard.shard_index) + "-of-" +
                std::to_string(options.shard.shard_count);
  const std::filesystem::path dir(options.out_dir);

  crp::harness::CheckpointRunOptions checkpoint;
  checkpoint.journal_path = (dir / (stem + ".journal")).string();
  checkpoint.resume = options.mode == "resume";
  checkpoint.interrupted = [] { return g_interrupted != 0; };
  checkpoint.max_cells = options.stop_after_cells;
  arm_faults(parse_fault_env(), checkpoint);
  install_stop_handlers();

  const auto run = crp::harness::run_sweep_shard_checkpointed(
      std::span<const crp::harness::SweepCell>(grid.cells), options.shard,
      sweep, checkpoint);

  if (run.status == crp::harness::CheckpointRunStatus::kInterrupted) {
    std::cerr << "crp_shard: stopped cleanly after cell "
              << (run.replayed_cells + run.executed_cells) << "/"
              << (run.manifest.cell_end - run.manifest.cell_begin)
              << " of shard range [" << run.manifest.cell_begin << ", "
              << run.manifest.cell_end << "); journal "
              << checkpoint.journal_path
              << " is durable — continue with `crp_shard resume` and the "
                 "same flags\n";
    return kExitResumable;
  }

  crp::harness::atomic_write_file((dir / (stem + ".csv")).string(), run.csv);

  crp::harness::ShardManifest manifest = run.manifest;
  manifest.csv = stem + ".csv";
  std::ostringstream manifest_json;
  crp::harness::write_shard_manifest(manifest_json, manifest);
  crp::harness::atomic_write_file((dir / (stem + ".manifest.json")).string(),
                                  manifest_json.str());

  std::cerr << "shard " << run.manifest.shard_index << "/"
            << run.manifest.shard_count << ": cells ["
            << run.manifest.cell_begin << ", " << run.manifest.cell_end
            << ") of " << run.manifest.total_cells << " ("
            << run.replayed_cells << " replayed from journal, "
            << run.executed_cells << " executed) -> "
            << (dir / (stem + ".csv")).string() << "\n";
  return kExitOk;
}

int merge_mode(const Options& options) {
  namespace ch = crp::harness;
  std::vector<ch::ShardArtifact> shards;
  shards.reserve(options.manifests.size());
  for (const std::string& manifest_path : options.manifests) {
    shards.push_back(ch::read_shard_artifact_file(manifest_path));
  }
  std::ostringstream merged;
  if (!options.allow_partial) {
    ch::merge_shard_csvs(merged,
                         std::span<const ch::ShardArtifact>(shards));
    ch::atomic_write_file(options.out, merged.str());
    std::cerr << "merged " << shards.size() << " shard(s) into "
              << options.out << "\n";
    return kExitOk;
  }
  const ch::PartialMergeReport report = ch::merge_shard_csvs_partial(
      merged, std::span<const ch::ShardArtifact>(shards));
  ch::atomic_write_file(options.out, merged.str());
  std::ostringstream report_json;
  ch::write_partial_merge_report(report_json, report);
  const std::string report_path = options.out + ".partial.json";
  ch::atomic_write_file(report_path, report_json.str());
  std::cerr << "merged " << shards.size() << " shard(s) into " << options.out
            << ": " << report.present_cells << "/" << report.total_cells
            << " cells present";
  if (!report.missing.empty()) {
    std::cerr << ", missing";
    for (const auto& range : report.missing) {
      std::cerr << " [" << range.begin << ", " << range.end << ")";
    }
  }
  std::cerr << " (see " << report_path << ")\n";
  return kExitOk;
}

int supervise_mode(const Options& options) {
  namespace ch = crp::harness;
  const OwnedGrid grid = build_grid(options);
  const auto sweep = sweep_options(options);

  ch::SuperviseOptions supervise;
  // Workers are re-execs of this binary. argv[0] without a slash
  // came from PATH lookup, which execv does not repeat — the
  // kernel's own record of the running image is the reliable name.
  supervise.exe = options.argv0.find('/') == std::string::npos
                      ? "/proc/self/exe"
                      : options.argv0;
  if (!options.grid_spec.empty()) {
    supervise.worker_flags = {"--grid-spec", options.grid_spec};
  } else {
    supervise.worker_flags = {"--grid", options.grid, "--n",
                              std::to_string(options.n)};
  }
  supervise.worker_flags.insert(
      supervise.worker_flags.end(),
      {"--trials", std::to_string(options.trials), "--seed",
       std::to_string(options.seed), "--cd-engine", options.cd_engine});
  if (options.threads != 0) {
    supervise.worker_flags.insert(supervise.worker_flags.end(),
                                  {"--threads",
                                   std::to_string(options.threads)});
  }
  supervise.out = options.out;
  supervise.out_dir = options.out_dir;
  supervise.workers = options.workers;
  supervise.resume = options.supervise_resume;
  supervise.retry = options.retry;
  // Jitter is seeded off the master seed (through the same stream
  // derivation as cell seeds) so the whole supervised run — artifacts
  // *and* schedule — is a function of the CLI arguments.
  supervise.retry.jitter_seed =
      crp::channel::derive_stream_seed(options.seed, 0x6a177e72u);
  supervise.stop_requested = [] { return g_interrupted != 0; };
  supervise.log = &std::cerr;
  install_stop_handlers();

  const ch::SuperviseResult result = ch::run_supervisor(
      std::span<const ch::SweepCell>(grid.cells), sweep, supervise);
  if (result.status == ch::SuperviseStatus::kInterrupted) {
    std::cerr << "crp_shard: supervision stopped cleanly after "
              << result.workers_spawned
              << " worker launch(es); continue with `crp_shard supervise "
                 "--resume` and the same flags\n";
    return kExitResumable;
  }
  std::cerr << "crp_shard: supervised sweep converged: "
            << (result.total_cells - result.quarantined.size()) << "/"
            << result.total_cells << " cells in " << options.out << ", "
            << result.quarantined.size() << " quarantined ("
            << result.workers_spawned << " worker launches, "
            << result.backfill_rounds << " backfill round(s))\n";
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  // The env surface is as strict as the flag surface: a typo'd
  // CRP_KERNEL_TIER must fail loudly (exit 2) before any work runs,
  // not silently dispatch whatever tier cpuid picked — tier provenance
  // is part of every artifact's audit trail.
  if (const char* env = std::getenv("CRP_KERNEL_TIER")) {
    try {
      crp::channel::kernels::parse_tier(env);
    } catch (const std::invalid_argument& error) {
      usage_error(std::string("CRP_KERNEL_TIER: ") + error.what());
    }
  }
  const Options options = parse_args(argc, argv);
  try {
    if (options.mode == "merge") return merge_mode(options);
    if (options.mode == "plan") return plan_mode(options);
    if (options.mode == "supervise") return supervise_mode(options);
    return run_mode(options);
  } catch (const crp::harness::IoError& error) {
    std::cerr << "crp_shard: I/O error: " << error.what() << "\n";
    return kExitIo;
  } catch (const std::filesystem::filesystem_error& error) {
    std::cerr << "crp_shard: I/O error: " << error.what() << "\n";
    return kExitIo;
  } catch (const std::invalid_argument& error) {
    std::cerr << "crp_shard: validation error: " << error.what() << "\n";
    return kExitValidation;
  } catch (const std::exception& error) {
    std::cerr << "crp_shard: internal error: " << error.what() << "\n";
    return kExitInternal;
  }
}
