// crp_shard: multi-process sweep shard driver and merge tool.
//
// Partitions a sweep grid's cells across processes and reassembles the
// per-shard artifacts into exactly the CSV a single-process run would
// have written — byte for byte (harness/shard.h is the library layer;
// the CI shard-smoke step diffs the two outputs).
//
// Usage:
//   crp_shard run   [--grid table1] [--n N] [--trials T] [--seed S]
//                   [--threads T] [--cd-engine simulate|tree]
//                   [--shard I/N] [--cells B:E] [--out FILE]
//                   [--out-dir DIR]
//   crp_shard merge --out FILE MANIFEST.json...
//
// run without --shard/--cells executes the whole grid in this process
// and writes the sweep CSV to --out (default: stdout) — the reference
// a sharded run must reproduce. With --shard i/N (or an explicit
// --cells begin:end range) it executes only that slice and writes a
// self-describing artifact pair into --out-dir:
//
//   DIR/shard-<i>-of-<N>.csv            write_sweep_csv rows (slice only)
//   DIR/shard-<i>-of-<N>.manifest.json  grid hash, master seed, trials,
//                                       cell range, per-cell seeds
//
// merge validates the manifests against each other (same grid hash,
// seed, and trials; cell ranges tile the grid with no gaps or
// overlaps; per-row cell seeds match the manifests) and writes the
// concatenated CSV in cell order. So
//
//   for i in 0 1 2; do crp_shard run --shard $i/3 --out-dir S ...; done
//   crp_shard merge --out merged.csv S/*.manifest.json
//
// round-trips bit-identically to `crp_shard run --out single.csv ...`
// with the same grid parameters — on one machine or three.
//
// Grids:
//   table1   the paper's Table 1 upper-bound grid: per entropy point
//            (m = 1, 2, 4, ... ranges of uniform condensed mass over
//            |L(n)| ranges), the Section 2.5 likelihood-ordered no-CD
//            schedule and the Section 2.6 coded-search CD policy, each
//            against that point's lifted distribution. --n scales the
//            network (and with it the number of entropy points).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/csv.h"
#include "harness/grids.h"
#include "harness/shard.h"
#include "harness/sweep.h"

namespace {

struct Options {
  std::string mode;
  std::string grid = "table1";
  std::size_t n = 1 << 16;
  std::size_t trials = 6000;
  std::uint64_t seed = 20210526;
  std::size_t threads = 0;
  std::string cd_engine = "simulate";
  bool sharded = false;
  bool shard_flag = false;
  bool cells_flag = false;
  crp::harness::ShardOptions shard;
  std::string out;
  std::string out_dir;
  std::vector<std::string> manifests;
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "crp_shard: " << message << "\n"
            << "usage: crp_shard run [--grid table1] [--n N] [--trials T]"
               " [--seed S] [--threads T] [--cd-engine simulate|tree]"
               " [--shard I/N] [--cells B:E] [--out FILE] [--out-dir DIR]\n"
               "       crp_shard merge --out FILE MANIFEST.json...\n";
  std::exit(2);
}

std::size_t parse_size(const std::string& value, const std::string& flag) {
  // Strict digits only: std::stoull would silently wrap "-1" to
  // 2^64 - 1 instead of rejecting it.
  const auto parsed = crp::harness::parse_csv_unsigned(value);
  if (!parsed) {
    usage_error("expected a non-negative integer for " + flag + ", got \"" +
                value + "\"");
  }
  return static_cast<std::size_t>(*parsed);
}

Options parse_args(int argc, char** argv) {
  Options options;
  if (argc < 2) usage_error("missing mode (run or merge)");
  options.mode = argv[1];
  if (options.mode != "run" && options.mode != "merge") {
    usage_error("unknown mode \"" + options.mode + "\"");
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--grid") {
      options.grid = next();
    } else if (arg == "--n") {
      options.n = parse_size(next(), arg);
    } else if (arg == "--trials") {
      options.trials = parse_size(next(), arg);
    } else if (arg == "--seed") {
      options.seed = parse_size(next(), arg);
    } else if (arg == "--threads") {
      options.threads = parse_size(next(), arg);
    } else if (arg == "--cd-engine") {
      options.cd_engine = next();
    } else if (arg == "--shard") {
      const std::string spec = next();
      const auto slash = spec.find('/');
      if (slash == std::string::npos) {
        usage_error("--shard expects I/N, got \"" + spec + "\"");
      }
      options.sharded = true;
      options.shard_flag = true;
      options.shard.shard_index =
          parse_size(spec.substr(0, slash), "--shard index");
      options.shard.shard_count =
          parse_size(spec.substr(slash + 1), "--shard count");
    } else if (arg == "--cells") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        usage_error("--cells expects BEGIN:END, got \"" + spec + "\"");
      }
      options.sharded = true;
      options.cells_flag = true;
      options.shard.cell_begin =
          parse_size(spec.substr(0, colon), "--cells begin");
      options.shard.cell_end =
          parse_size(spec.substr(colon + 1), "--cells end");
    } else if (arg == "--out") {
      options.out = next();
    } else if (arg == "--out-dir") {
      options.out_dir = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the header comment of tools/crp_shard.cpp\n";
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown argument " + arg);
    } else {
      options.manifests.push_back(arg);
    }
  }
  if (options.mode == "run" && !options.manifests.empty()) {
    usage_error("run mode takes no positional arguments");
  }
  if (options.mode == "merge" && options.manifests.empty()) {
    usage_error("merge mode needs at least one manifest path");
  }
  if (options.mode == "merge" && options.out.empty()) {
    usage_error("merge mode needs --out FILE");
  }
  if (options.shard_flag && options.cells_flag) {
    // plan_shards would take the explicit-range branch and silently
    // record the unrelated --shard values in the manifest.
    usage_error("--shard and --cells are mutually exclusive");
  }
  if (options.sharded && !options.out.empty()) {
    usage_error("--out applies to whole-grid runs; sharded runs write "
                "their artifact pair into --out-dir");
  }
  if (options.n < 4) usage_error("--n must be >= 4");
  return options;
}

/// A grid plus the entropy points its cells reference; keep alive
/// until the sweep is done. The cells come from the shared reference
/// builder (harness/grids.h), so "table1" here is exactly the grid
/// bench_table1 measures.
struct OwnedGrid {
  std::vector<crp::harness::Table1EntropyPoint> points;
  std::vector<crp::harness::SweepCell> cells;
};

OwnedGrid table1_grid(const Options& options) {
  OwnedGrid owned;
  owned.points = crp::harness::table1_entropy_points(options.n);
  owned.cells = crp::harness::table1_upper_bound_grid(owned.points).cells();
  return owned;
}

crp::harness::SweepOptions sweep_options(const Options& options) {
  crp::harness::SweepOptions sweep{.trials = options.trials,
                                   .seed = options.seed,
                                   .threads = options.threads};
  if (options.cd_engine == "tree") {
    sweep.cd_engine = crp::harness::CdEngine::kHistoryTree;
  } else if (options.cd_engine != "simulate") {
    usage_error("unknown --cd-engine \"" + options.cd_engine +
                "\" (simulate|tree)");
  }
  return sweep;
}

void write_file(const std::filesystem::path& path,
                const std::string& contents) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary);
  out << contents;
  // Flush before the state check: a destructor-time flush failure
  // (disk full) would otherwise go unreported and leave a truncated
  // artifact behind a zero exit code.
  out.flush();
  if (!out) {
    throw std::runtime_error("cannot write " + path.string());
  }
}

int run_mode(const Options& options) {
  if (options.grid != "table1") {
    usage_error("unknown grid \"" + options.grid + "\"");
  }
  const OwnedGrid grid = table1_grid(options);
  const auto sweep = sweep_options(options);

  if (!options.sharded) {
    // The monolithic reference: the whole grid in one process.
    const auto results = crp::harness::run_sweep(
        std::span<const crp::harness::SweepCell>(grid.cells), sweep);
    std::ostringstream csv;
    crp::harness::write_sweep_csv(csv, results);
    if (options.out.empty()) {
      std::cout << csv.str();
    } else {
      write_file(options.out, csv.str());
      std::cerr << "wrote " << results.size() << " cells to " << options.out
                << "\n";
    }
    return 0;
  }

  if (options.out_dir.empty()) {
    usage_error("sharded runs need --out-dir DIR for the artifact pair");
  }
  const auto run = crp::harness::run_sweep_shard(
      std::span<const crp::harness::SweepCell>(grid.cells), options.shard,
      sweep);
  // Explicit --cells runs all share shard_index 0 of 1, so their
  // artifacts are named by the cell range instead — successive
  // hand-balanced slices into one directory must not overwrite each
  // other.
  const bool explicit_range =
      options.shard.cell_begin != crp::harness::ShardOptions::kAutoRange;
  const std::string stem =
      explicit_range
          ? "shard-cells-" + std::to_string(run.manifest.cell_begin) + "-" +
                std::to_string(run.manifest.cell_end)
          : "shard-" + std::to_string(run.manifest.shard_index) + "-of-" +
                std::to_string(run.manifest.shard_count);
  std::filesystem::create_directories(options.out_dir);
  const std::filesystem::path dir(options.out_dir);

  std::ostringstream csv;
  crp::harness::write_sweep_csv(csv, run.results);
  write_file(dir / (stem + ".csv"), csv.str());

  crp::harness::ShardManifest manifest = run.manifest;
  manifest.csv = stem + ".csv";
  std::ostringstream manifest_json;
  crp::harness::write_shard_manifest(manifest_json, manifest);
  write_file(dir / (stem + ".manifest.json"), manifest_json.str());

  std::cerr << "shard " << run.manifest.shard_index << "/"
            << run.manifest.shard_count << ": cells ["
            << run.manifest.cell_begin << ", " << run.manifest.cell_end
            << ") of " << run.manifest.total_cells << " -> "
            << (dir / (stem + ".csv")).string() << "\n";
  return 0;
}

int merge_mode(const Options& options) {
  std::vector<crp::harness::ShardArtifact> shards;
  shards.reserve(options.manifests.size());
  for (const std::string& manifest_path : options.manifests) {
    std::ifstream manifest_in(manifest_path);
    if (!manifest_in) {
      throw std::runtime_error("cannot open manifest " + manifest_path);
    }
    crp::harness::ShardArtifact shard;
    shard.manifest = crp::harness::read_shard_manifest(manifest_in);
    if (shard.manifest.csv.empty()) {
      throw std::runtime_error("manifest " + manifest_path +
                               " names no CSV artifact");
    }
    const auto csv_path =
        std::filesystem::path(manifest_path).parent_path() /
        shard.manifest.csv;
    std::ifstream csv_in(csv_path);
    if (!csv_in) {
      throw std::runtime_error("cannot open shard CSV " + csv_path.string() +
                               " (named by " + manifest_path + ")");
    }
    shard.csv = crp::harness::read_shard_csv(csv_in);
    shards.push_back(std::move(shard));
  }
  std::ostringstream merged;
  crp::harness::merge_shard_csvs(
      merged, std::span<const crp::harness::ShardArtifact>(shards));
  write_file(options.out, merged.str());
  std::cerr << "merged " << shards.size() << " shard(s) into " << options.out
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  try {
    return options.mode == "run" ? run_mode(options) : merge_mode(options);
  } catch (const std::exception& error) {
    std::cerr << "crp_shard: " << error.what() << "\n";
    return 1;
  }
}
