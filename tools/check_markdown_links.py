#!/usr/bin/env python3
"""Fail on dead intra-repo markdown links.

Usage:
    tools/check_markdown_links.py [REPO_ROOT]

Scans README.md, ROADMAP.md, and every markdown file under docs/ for
inline links `[text](target)` and checks that each relative target
exists in the repository (files or directories; `#fragment` suffixes
and code fences are ignored). External links (http/https/mailto) are
not fetched — this guards the repo's own cross-references, not the
internet. Exit code 1 lists every dead link; 0 means all resolved.

CI runs this as the `docs` job, and CTest registers it as
`docs_link_check`, so a PR that moves or renames a documented file
fails fast.
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE = re.compile(r"^(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def links_in(path: Path):
    """Yield (line_number, target) for inline links outside code fences."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE_LINK.finditer(line):
            yield number, match.group(1)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    root = root.resolve()
    sources = [root / "README.md", root / "ROADMAP.md"]
    sources += sorted((root / "docs").glob("**/*.md"))
    sources = [s for s in sources if s.exists()]
    if not sources:
        print(f"no markdown sources found under {root}", file=sys.stderr)
        return 2

    dead = []
    checked = 0
    for source in sources:
        for number, target in links_in(source):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (
                root / relative[1:]
                if relative.startswith("/")
                else source.parent / relative
            )
            checked += 1
            if not resolved.exists():
                dead.append(
                    f"{source.relative_to(root)}:{number}: "
                    f"dead link -> {target}"
                )

    for entry in dead:
        print(entry, file=sys.stderr)
    if dead:
        print(f"\nFAIL: {len(dead)} dead intra-repo link(s)", file=sys.stderr)
        return 1
    print(
        f"OK: {checked} intra-repo link(s) resolved across "
        f"{len(sources)} file(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
