#!/usr/bin/env bash
# run_tidy.sh — the clang-tidy leg of the static-analysis wall.
#
# Runs the checked-in .clang-tidy check set over every first-party
# translation unit in the compile database, with warnings promoted to
# errors, and rejects bare NOLINTs (every suppression must carry a
# trailing reason comment — same policy as crp_lint's allow pragma).
#
# Usage: tools/run_tidy.sh [BUILD_DIR] [--no-werror] [-- FILE...]
#   BUILD_DIR    build tree with compile_commands.json (default: build;
#                configured automatically if missing —
#                CMAKE_EXPORT_COMPILE_COMMANDS is a cache default)
#   --no-werror  report findings without failing (local triage)
#   -- FILE...   restrict to specific source files
#
# CI runs this in the `lint` job. Locally you need clang-tidy >= 14 on
# PATH (any `clang-tidy-N` spelling is found automatically).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="build"
werror=1
explicit_files=()

while [ $# -gt 0 ]; do
  case "$1" in
    --no-werror) werror=0 ;;
    --)
      shift
      explicit_files=("$@")
      break
      ;;
    -*)
      echo "run_tidy.sh: unknown flag $1" >&2
      exit 2
      ;;
    *) build_dir="$1" ;;
  esac
  shift
done

# Locate clang-tidy: plain name first, then versioned spellings,
# newest first.
tidy=""
for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy="$candidate"
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "run_tidy.sh: no clang-tidy on PATH (need >= 14; apt-get install" \
       "clang-tidy)" >&2
  exit 2
fi

cd "$repo_root"

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy.sh: no $build_dir/compile_commands.json; configuring" >&2
  cmake -B "$build_dir" -S . > /dev/null
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy.sh: configure produced no compile database" >&2
  exit 2
fi

# Suppression policy: a NOLINT must name its check and carry a reason
# after `--` (mirrors crp_lint's allow pragma). Bare NOLINTs would
# silently widen forever.
bare_nolint=$(grep -rnE 'NOLINT(NEXTLINE)?(\(([^)]*)\))?' \
                   --include='*.cpp' --include='*.h' \
                   src tools bench examples \
              | grep -vE 'NOLINT(NEXTLINE)?\([a-z0-9.-]+(,[a-z0-9.-]+)*\).*-- ' \
              || true)
if [ -n "$bare_nolint" ]; then
  echo "run_tidy.sh: NOLINT without a named check + '-- reason':" >&2
  echo "$bare_nolint" >&2
  exit 1
fi

# First-party TUs only: the compile database also holds test binaries
# (gtest macros expand into noise) — the wall covers the library,
# tools, benches, and examples.
mapfile -t files < <(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json
import sys

for entry in json.load(open(sys.argv[1])):
    path = entry["file"]
    if any(f"/{part}/" in path for part in ("src", "tools", "bench",
                                            "examples")):
        print(path)
EOF
)
if [ "${#explicit_files[@]}" -gt 0 ]; then
  files=("${explicit_files[@]}")
fi
if [ "${#files[@]}" -eq 0 ]; then
  echo "run_tidy.sh: no first-party files in the compile database" >&2
  exit 2
fi

args=(-p "$build_dir" --quiet)
if [ "$werror" -eq 1 ]; then
  args+=(--warnings-as-errors='*')
fi

echo "run_tidy.sh: $tidy over ${#files[@]} file(s) (werror=$werror)"
status=0
for file in "${files[@]}"; do
  "$tidy" "${args[@]}" "$file" || status=1
done
if [ "$status" -ne 0 ]; then
  echo "run_tidy.sh: findings above — fix them or NOLINT(check) with a" \
       "reason" >&2
fi
exit "$status"
