#!/usr/bin/env python3
"""crp_lint: the repo-specific static rule engine for the determinism
and durability contracts.

The six-legged bit-determinism contract (docs/ARCHITECTURE.md) and the
crash-safe artifact discipline (harness/checkpoint.h) are behavioral
invariants: a single forgotten `std::random_device`, one range-for over
an `unordered_map` in a result fold, or a bare `std::ofstream` writing
a final artifact silently breaks reproducibility or durability until a
golden happens to catch it.  This linter encodes those invariants as
named rules over a light C++ scan (comments and string literals blanked
before matching, so prose never trips a rule), each with a stable rule
ID that docs/STATIC_ANALYSIS.md catalogues:

  det-no-wallclock-rng      no wall-clock/OS entropy outside channel/rng.h
  det-no-unordered-iteration no iteration over unordered containers in
                            result paths (src/harness, src/channel)
  det-no-fp-contract        no per-TU fast-math / FP_CONTRACT overrides
  dur-atomic-artifacts      final artifacts go through atomic_write_file
                            or a CheckpointSink, never bare ofstream/fopen
  dur-fsync-append          append-mode journal writers must fsync
  exit-taxonomy             no magic exit codes in crp_shard/supervisor

Suppression is explicit and audited: a finding is silenced only by

  // crp-lint: allow(<rule-id>) -- <reason>

on the offending line or alone on the line above it.  The reason is
mandatory; a pragma without one (or naming an unknown rule) is itself
reported under the meta rule `lint-pragma`.

Usage:
  crp_lint.py [--root DIR] [PATH...]   lint PATHs (relative to root;
                                       default: src tools bench
                                       CMakeLists.txt)
  crp_lint.py --list-rules             print the rule catalogue

Exit codes: 0 clean, 1 findings, 2 usage/internal error.  Findings are
printed one per line as `path:line: rule-id: message` so editors and CI
logs can jump to them.  tests/crp_lint_test.py drives this engine over
tests/lint_fixtures (a miniature repo tree of deliberate violations,
every rule asserted to fire exactly where annotated) and over the live
tree (must be clean); CI runs both via ctest and the lint job.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path, PurePosixPath

PRAGMA_RE = re.compile(
    r"//\s*crp-lint:\s*allow\(\s*([A-Za-z0-9-]+)\s*\)\s*(?:--\s*(.*\S))?\s*$"
)
# A pragma-ish comment that does not parse (wrong verb, missing parens):
# report it rather than silently not suppressing.
PRAGMA_ANYTHING_RE = re.compile(r"//\s*crp-lint:")

CXX_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
CMAKE_NAMES = {"CMakeLists.txt"}
CMAKE_SUFFIXES = {".cmake"}


def blank_code(text: str) -> str:
    """Blanks comments, string literals, and char literals with spaces,
    preserving every newline, so rules match only real code tokens and
    line numbers survive.  Handles //, /* */, "..." with escapes,
    '...', and raw strings R"delim(...)delim"."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch == "R" and nxt == '"':
            close = text.find("(", i + 2)
            if close == -1:
                out.append(" ")
                i += 1
                continue
            delim = text[i + 2 : close]
            end = text.find(")" + delim + '"', close + 1)
            j = n if end == -1 else end + len(delim) + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch == '"' or ch == "'":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


class SourceFile:
    """One scanned file: raw lines for pragma handling, blanked lines
    for rule matching, and the repo-relative posix path for scoping."""

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.raw_lines = text.splitlines()
        self.code_lines = blank_code(text).splitlines()
        # Pad so raw/code always line up even on trailing-newline quirks.
        while len(self.code_lines) < len(self.raw_lines):
            self.code_lines.append("")

    @property
    def code(self) -> str:
        return "\n".join(self.code_lines)


# ---------------------------------------------------------------------------
# Rules.  Each rule is (id, contract, description, scope predicate,
# check function).  The check yields (line_number, message) pairs over a
# SourceFile; scoping keeps rules on the paths whose contract they
# guard, so e.g. tests may use ofstream freely.


def _in(rel: str, *prefixes: str) -> bool:
    p = PurePosixPath(rel)
    return any(str(p).startswith(prefix) for prefix in prefixes)


def _is_cxx(rel: str) -> bool:
    return PurePosixPath(rel).suffix in CXX_SUFFIXES


def _is_cmake(rel: str) -> bool:
    p = PurePosixPath(rel)
    return p.name in CMAKE_NAMES or p.suffix in CMAKE_SUFFIXES


WALLCLOCK_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*random_device\b|\brandom_device\b"),
     "std::random_device is OS entropy — derive streams from the master "
     "seed via channel/rng.h (derive_rng / derive_stream_seed)"),
    (re.compile(r"\bsrand\s*\(|(?<![\w:])rand\s*\("),
     "C rand()/srand() is neither seeded nor portable — use the "
     "channel/rng.h SplitMix64 streams"),
    (re.compile(r"(?<![\w:])time\s*\("),
     "time() is wall-clock state — results must be a function of the "
     "CLI seed only"),
    (re.compile(r"\bsystem_clock\b"),
     "std::chrono::system_clock is wall-clock state — use the injected "
     "Clock seam (harness/supervisor.h) or steady_clock for durations"),
]


def check_wallclock_rng(src: SourceFile):
    for lineno, line in enumerate(src.code_lines, 1):
        for pattern, why in WALLCLOCK_PATTERNS:
            if pattern.search(line):
                yield lineno, why
                break


UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
)
IDENT_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:;|=|\{|\()")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*:[^;)]*)\)")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\(")


def _unordered_names(src: SourceFile) -> set:
    """Identifiers declared (or member-declared) with an unordered
    container type anywhere in the file.  A heuristic — declaration and
    closing `>` may span lines — but tight enough for this codebase's
    idiom, and misses only cost a rule firing, never a false pass of
    the fixtures."""
    names = set()
    text = src.code
    for match in UNORDERED_DECL_RE.finditer(text):
        # Walk past the template argument list, then take the declared
        # identifier(s) before the statement ends.
        depth = 0
        i = match.end() - 1
        while i < len(text):
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            elif text[i] == ";":
                break
            i += 1
        tail = text[i + 1 : i + 200]
        stmt_end = tail.find(";")
        if stmt_end != -1:
            tail = tail[:stmt_end + 1]
        ident = IDENT_RE.search(tail)
        if ident:
            names.add(ident.group(1))
    return names


def check_unordered_iteration(src: SourceFile):
    names = _unordered_names(src)
    for lineno, line in enumerate(src.code_lines, 1):
        for match in RANGE_FOR_RE.finditer(line):
            ranged = match.group(1).split(":", 1)[1].strip()
            ranged = ranged.lstrip("*&( ").rstrip(") ")
            base = re.split(r"[.\->\s]", ranged, 1)[0]
            if base in names or UNORDERED_DECL_RE.search(ranged):
                yield (lineno,
                       f"range-for over unordered container '{base or ranged}'"
                       " — hash-table order is unspecified and varies by "
                       "libstdc++ version; iterate a sorted copy or an "
                       "index-ordered structure in result paths")
        for match in BEGIN_CALL_RE.finditer(line):
            if match.group(1) in names:
                yield (lineno,
                       f"iterator walk over unordered container "
                       f"'{match.group(1)}' — hash-table order is "
                       "unspecified; fold through a deterministic order")


FP_CONTRACT_PATTERNS = [
    (re.compile(r"-ffast-math|-funsafe-math-optimizations|-Ofast\b"),
     "fast-math re-associates and contracts FP — forbidden anywhere; the "
     "kernels' bit-equality leg assumes strict IEEE evaluation"),
    (re.compile(r"-ffp-contract\s*=\s*(?:fast|on)"),
     "per-TU fp-contract override — the project pins -ffp-contract=off "
     "globally (CMakeLists.txt); a fused TU rounds differently"),
    (re.compile(r"FP_CONTRACT\s+(?:ON|DEFAULT)|fp_contract\s*\(\s*on",
                re.IGNORECASE),
     "#pragma fp_contract override — contraction must stay off in every "
     "TU or scalar-vs-SIMD bit-equality breaks"),
]


def check_fp_contract(src: SourceFile):
    cmake = _is_cmake(src.rel)
    for lineno, line in enumerate(src.code_lines, 1):
        # CMake flags often sit inside quoted strings (which the C++
        # blanking erases), so match the raw line there — minus its
        # `#` comment, where prose may legitimately name a flag.
        haystack = (src.raw_lines[lineno - 1].split("#", 1)[0]
                    if cmake else line)
        for pattern, why in FP_CONTRACT_PATTERNS:
            if pattern.search(haystack):
                yield lineno, why
                break


ARTIFACT_SINK_RE = re.compile(
    r"\bstd\s*::\s*ofstream\b|(?<!\w)ofstream\b|\bfopen\s*\(|\bfreopen\s*\("
)


def check_atomic_artifacts(src: SourceFile):
    for lineno, line in enumerate(src.code_lines, 1):
        if ARTIFACT_SINK_RE.search(line):
            yield (lineno,
                   "bare stream/file write in an artifact path — final "
                   "artifacts must go through atomic_write_file (temp + "
                   "rename + fsync) or a CheckpointSink so a crash never "
                   "leaves a half-written file under a final name")


O_APPEND_RE = re.compile(r"\bO_APPEND\b")
APPEND_MODE_RE = re.compile(r"\bstd\s*::\s*ios(?:_base)?\s*::\s*app\b")
FSYNC_RE = re.compile(r"\bfsync\s*\(|\bfdatasync\s*\(|->\s*sync\s*\(|\.sync\s*\(")


def check_fsync_append(src: SourceFile):
    if FSYNC_RE.search(src.code):
        return
    for lineno, line in enumerate(src.code_lines, 1):
        if O_APPEND_RE.search(line) or APPEND_MODE_RE.search(line):
            yield (lineno,
                   "append-mode journal writer with no fsync anywhere in "
                   "this file — an append that is not durably flushed can "
                   "be lost on power failure after the process reported "
                   "the cell complete (checkpoint.h syncs every record)")


EXIT_LITERAL_RE = re.compile(
    r"(?<![\w.])_?(?:std\s*::\s*)?_?exit\s*\(\s*(\d+)\s*\)"
)
QUICK_EXIT_RE = re.compile(r"\bquick_exit\s*\(|\babort\s*\(\s*\)")


def check_exit_taxonomy(src: SourceFile):
    for lineno, line in enumerate(src.code_lines, 1):
        match = EXIT_LITERAL_RE.search(line)
        if match:
            yield (lineno,
                   f"magic exit code {match.group(1)} — crp_shard/"
                   "supervisor exits are a scheduler-facing contract; use "
                   "the named kExit* taxonomy constants (0 ok, 1 internal, "
                   "2 usage, 3 validation, 4 I/O, 75 resumable)")
            continue
        if QUICK_EXIT_RE.search(line):
            yield (lineno,
                   "abort()/quick_exit() bypasses the exit taxonomy — "
                   "throw and let main map the error to an exit code")


class Rule:
    def __init__(self, rule_id, contract, description, in_scope, check):
        self.rule_id = rule_id
        self.contract = contract
        self.description = description
        self.in_scope = in_scope
        self.check = check


RULES = [
    Rule(
        "det-no-wallclock-rng",
        "determinism: seed-derived streams",
        "No std::random_device / time() / rand() / system_clock outside "
        "the channel/rng.h seams and the injected Clock.",
        lambda rel: _is_cxx(rel)
        and _in(rel, "src/", "tools/", "bench/", "examples/")
        and rel != "src/channel/rng.h"
        # The production Clock implementation is the one sanctioned home
        # of real time; it is injected everywhere else.
        and rel != "src/harness/supervisor.cpp",
        check_wallclock_rng,
    ),
    Rule(
        "det-no-unordered-iteration",
        "determinism: fold order",
        "No range-for or iterator walks over unordered_map/unordered_set "
        "in the harness/channel result paths — hash order is unspecified.",
        lambda rel: _is_cxx(rel) and _in(rel, "src/harness/", "src/channel/"),
        check_unordered_iteration,
    ),
    Rule(
        "det-no-fp-contract",
        "determinism: ISA-independence",
        "No fast-math flags or FP_CONTRACT pragma overrides anywhere — "
        "the whole project compiles -ffp-contract=off.",
        lambda rel: _is_cxx(rel) and _in(rel, "src/", "bench/", "tools/",
                                         "examples/")
        or _is_cmake(rel),
        check_fp_contract,
    ),
    Rule(
        "dur-atomic-artifacts",
        "durability: atomic final artifacts",
        "Final-artifact writes in harness/ and tools/ must go through "
        "atomic_write_file or a CheckpointSink, not bare ofstream/fopen.",
        lambda rel: _is_cxx(rel) and _in(rel, "src/harness/", "tools/"),
        check_atomic_artifacts,
    ),
    Rule(
        "dur-fsync-append",
        "durability: synced journal appends",
        "A file that opens journals in append mode must fsync its "
        "appends (or delegate to a CheckpointSink that does).",
        lambda rel: _is_cxx(rel) and _in(rel, "src/harness/", "tools/"),
        check_fsync_append,
    ),
    Rule(
        "exit-taxonomy",
        "operability: stable exit codes",
        "No raw exit(<literal>) or abort() in the crp_shard/supervisor "
        "paths — exits go through the documented taxonomy constants.",
        lambda rel: rel.startswith("tools/crp_shard")
        or _in(rel, "src/harness/supervisor", "src/harness/checkpoint",
               "src/harness/shard"),
        check_exit_taxonomy,
    ),
]

RULE_IDS = {rule.rule_id for rule in RULES}


# ---------------------------------------------------------------------------
# Pragma handling


def collect_pragmas(src: SourceFile):
    """Returns (allows, pragma_findings): allows maps line -> set of
    rule IDs suppressed on that line; a pragma alone on its line covers
    the next non-blank line."""
    allows = {}
    findings = []
    lines = src.raw_lines
    for lineno, raw in enumerate(lines, 1):
        if not PRAGMA_ANYTHING_RE.search(raw):
            continue
        match = PRAGMA_RE.search(raw)
        if not match:
            findings.append(Finding(
                src.rel, lineno, "lint-pragma",
                "malformed crp-lint pragma — expected "
                "`// crp-lint: allow(<rule-id>) -- <reason>`"))
            continue
        rule_id, reason = match.group(1), match.group(2)
        if rule_id not in RULE_IDS:
            findings.append(Finding(
                src.rel, lineno, "lint-pragma",
                f"allow() names unknown rule '{rule_id}'"))
            continue
        if not reason:
            findings.append(Finding(
                src.rel, lineno, "lint-pragma",
                f"allow({rule_id}) without a reason — suppressions must "
                "say why (`-- <reason>`)"))
            continue
        target = lineno
        before = raw[: match.start()].strip()
        if not before:
            # Pragma-only line: it covers the next line of actual code,
            # skipping blanks and comment-only lines (the reason may
            # wrap onto continuation comments).
            nxt = lineno + 1
            while nxt <= len(lines):
                stripped = lines[nxt - 1].strip()
                if stripped and not stripped.startswith("//"):
                    break
                nxt += 1
            target = nxt
        allows.setdefault(target, set()).add(rule_id)
    return allows, findings


# ---------------------------------------------------------------------------
# Driver


def lint_file(root: Path, rel: str) -> list:
    try:
        text = (root / rel).read_text(encoding="utf-8", errors="replace")
    except OSError as error:
        return [Finding(rel, 0, "lint-io", f"cannot read file: {error}")]
    src = SourceFile(rel, text)
    allows, findings = collect_pragmas(src)
    for rule in RULES:
        if not rule.in_scope(rel):
            continue
        for lineno, message in rule.check(src):
            if rule.rule_id in allows.get(lineno, ()):
                continue
            findings.append(Finding(rel, lineno, rule.rule_id, message))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_files(root: Path, rel_paths):
    seen = set()
    for rel in rel_paths:
        path = root / rel
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(p for p in path.rglob("*") if p.is_file())
        else:
            raise FileNotFoundError(f"no such path under root: {rel}")
        for p in candidates:
            rp = p.relative_to(root).as_posix()
            if rp in seen:
                continue
            if (PurePosixPath(rp).suffix in CXX_SUFFIXES
                    or _is_cmake(rp)):
                seen.add(rp)
                yield rp


DEFAULT_PATHS = ["src", "tools", "bench", "examples", "CMakeLists.txt"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="crp_lint.py",
        description="repo-specific determinism/durability rule engine")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root the rule scopes are relative to "
                             "(default: this script's repo)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories relative to --root "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  [{rule.contract}]")
            print(f"    {rule.description}")
        return 0

    root = (args.root or Path(__file__).resolve().parent.parent).resolve()
    rel_paths = args.paths or [p for p in DEFAULT_PATHS
                               if (root / p).exists()]
    findings = []
    try:
        for rel in iter_files(root, rel_paths):
            findings.extend(lint_file(root, rel))
    except FileNotFoundError as error:
        print(f"crp_lint: {error}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"crp_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
