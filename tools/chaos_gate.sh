#!/usr/bin/env bash
# Chaos acceptance gate for `crp_shard supervise`.
#
# Runs the Table 1 grid once monolithically (the reference), then runs
# the same grid under a 3-worker supervised fleet while three kinds of
# chaos land at once:
#
#   * an external kill loop SIGKILLs a random live worker every ~100 ms
#     (the supervisor only sees "killed by signal 9" and must resume
#     each victim from its journal's valid prefix);
#   * CRP_FAULT_EXIT4_ON_APPEND makes every worker die with the
#     transient I/O exit (4) on its 3rd journal append, so no single
#     worker process ever finishes a 3-cell range in one life;
#   * CRP_FAULT_POISON_CELLS poisons one cell, which must be bisected
#     down to a single-cell range and quarantined, not retried forever.
#
# CRP_FAULT_SLEEP_MS_IN_CELL stretches every cell to ~200 ms so worker
# processes are alive long enough for the kill loop to find them; it
# changes timing only, never CSV bytes.
#
# The gate passes iff the fleet converges with exit 0 and no human
# intervention, exactly the poisoned cell is quarantined, and the
# merged CSV is byte-identical (cmp) to the monolithic CSV minus the
# quarantined row.
#
# Usage: tools/chaos_gate.sh [build-dir] [scratch-dir]
set -euo pipefail

build=${1:-build}
out=${2:-/tmp/chaos-gate}
bin=$build/crp_shard
poison=5

rm -rf "$out"
mkdir -p "$out"

flags=(--grid table1 --n 1024 --trials 200 --seed 7)

# Monolithic reference, no faults armed.
"$bin" run "${flags[@]}" --out "$out/single.csv"

# Supervised fleet with injected faults. --retry-budget 10 is far above
# the 6 external kills delivered below, so random crashes can never
# exhaust a healthy range's budget and cause a spurious quarantine —
# only the poisoned cell's validation failures escalate.
env CRP_FAULT_SLEEP_MS_IN_CELL=200 \
    CRP_FAULT_EXIT4_ON_APPEND=3 \
    CRP_FAULT_POISON_CELLS=$poison \
  "$bin" supervise "${flags[@]}" \
    --workers 3 --retry-budget 10 --backoff-ms 10 --backoff-max-ms 80 \
    --out "$out/merged.csv" --out-dir "$out/shards" \
    2> "$out/supervise.log" &
sup=$!

# External chaos: SIGKILL a random live worker until six kills have
# landed or the supervisor finishes first.
kills=0
while [ "$kills" -lt 6 ] && kill -0 "$sup" 2>/dev/null; do
  sleep 0.1
  workers=$(pgrep -P "$sup" || true)
  [ -n "$workers" ] || continue
  victim=$(echo "$workers" | shuf -n 1)
  if kill -9 "$victim" 2>/dev/null; then
    kills=$((kills + 1))
  fi
done
echo "chaos: delivered $kills external SIGKILL(s)"

wait "$sup" || {
  status=$?
  echo "supervise exited $status instead of converging" >&2
  cat "$out/supervise.log" >&2
  exit 1
}

[ "$kills" -ge 1 ] || {
  echo "chaos loop never found a live worker to kill" >&2
  exit 1
}
grep -q "killed by signal 9" "$out/supervise.log" || {
  echo "supervisor log never observed a SIGKILLed worker" >&2
  exit 1
}
grep -q "bisecting cells" "$out/supervise.log" || {
  echo "supervisor log shows no bisection of the poisoned range" >&2
  exit 1
}

# Exactly the poisoned cell must be quarantined, and the merged CSV
# must equal the monolithic CSV minus that cell's row (row i+1: the
# CSV has one header line, then one row per cell in grid order).
python3 - "$out" "$poison" <<'EOF'
import json
import sys

out, poison = sys.argv[1], int(sys.argv[2])
with open(f"{out}/merged.csv.quarantine.json") as f:
    report = json.load(f)
assert report["format"] == "crp-quarantine-v1", report["format"]
cells = [entry["cell_index"] for entry in report["quarantined"]]
assert cells == [poison], f"quarantined {cells}, expected [{poison}]"

with open(f"{out}/single.csv", "rb") as f:
    lines = f.read().splitlines(keepends=True)
del lines[poison + 1]
with open(f"{out}/expected.csv", "wb") as f:
    f.write(b"".join(lines))
EOF

cmp "$out/expected.csv" "$out/merged.csv"
echo "chaos-supervised CSV is byte-identical minus the quarantined row"
