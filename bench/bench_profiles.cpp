// Exact success profiles: Pr(solved within r rounds) computed in closed
// form (no Monte-Carlo noise) for the paper's algorithms and baselines,
// rendered as CDF sparklines. This is the figure-like view of Table 1:
// how the whole distribution of the solving round — not just its mean —
// moves with entropy and divergence.
//
// Also validates the exact worst case of the Table 2 deterministic
// protocols by exhaustive adversary enumeration at small n.
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/adversary.h"
#include "harness/exact.h"
#include "harness/sparkline.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "predict/noise.h"

namespace {

constexpr std::size_t kNetwork = 1 << 14;  // 14 ranges
using crp::harness::fmt;

void print_entropy_profiles() {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  constexpr std::size_t horizon = 60;
  std::cout << "== Exact no-CD success profiles vs entropy (Y = X, k at "
               "the top range endpoint; x: rounds 1.." << horizon
            << ", y: Pr(solved)) ==\n";
  for (std::size_t m : {1ul, 4ul, 14ul}) {
    const auto condensed =
        crp::predict::uniform_over_ranges(ranges, m);
    const crp::core::LikelihoodOrderedSchedule schedule(condensed);
    const std::size_t k = crp::info::range_max_size(m);  // worst range
    const auto profile =
        crp::harness::exact_profile_no_cd(schedule, k, horizon);
    std::cout << "  H=" << fmt(condensed.entropy(), 2) << " k=" << k
              << " |"
              << crp::harness::sparkline(
                     std::span<const double>(profile.solve_by).subspan(1),
                     horizon)
              << "| by-" << horizon << "="
              << fmt(profile.solve_by.back(), 3) << "\n";
  }
  std::cout << "  (higher entropy pushes the CDF right: more rounds "
               "before the likely ranges reach the truth)\n\n";

  std::cout << "== Exact CD success profiles (same sweep, coded search) "
               "==\n";
  for (std::size_t m : {1ul, 4ul, 14ul}) {
    const auto condensed =
        crp::predict::uniform_over_ranges(ranges, m);
    const crp::core::CodedSearchPolicy policy(condensed);
    const std::size_t k = crp::info::range_max_size(m);
    const auto profile = crp::harness::exact_profile_cd(policy, k, 30);
    std::cout << "  H=" << fmt(condensed.entropy(), 2) << " k=" << k
              << " |"
              << crp::harness::sparkline(
                     std::span<const double>(profile.solve_by).subspan(1),
                     30)
              << "| by-30=" << fmt(profile.solve_by.back(), 3) << "\n";
  }
  std::cout << '\n';
}

void print_divergence_profiles() {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  const auto truth = crp::predict::geometric_ranges(ranges, 0.35);
  const auto adversary = crp::predict::smooth_with_uniform(
      crp::predict::reverse_ranges(truth), 0.05);
  // Fix k in the truth's most likely range; sweep prediction quality.
  const std::size_t k = 2;
  constexpr std::size_t horizon = 40;
  std::cout << "== Exact no-CD profiles vs divergence (k = " << k
            << ", truth-likely range) ==\n";
  for (double lambda : {1.0, 0.5, 0.0}) {
    const auto prediction =
        crp::predict::mix(truth, adversary, lambda);
    const crp::core::LikelihoodOrderedSchedule schedule(prediction);
    const auto profile =
        crp::harness::exact_profile_no_cd(schedule, k, horizon);
    std::cout << "  D=" << fmt(truth.kl_divergence(prediction), 2)
              << " |"
              << crp::harness::sparkline(
                     std::span<const double>(profile.solve_by).subspan(1),
                     horizon)
              << "| E[T]<=" << fmt(profile.truncated_expectation, 1)
              << "\n";
  }
  std::cout << "  (divergence delays the first probe of the true range "
               "by pushing it down the likelihood order)\n\n";
}

void print_exact_adversary() {
  constexpr std::size_t n = 64;  // height 6; C(64,3) = 41664 sets
  // exact_worst_case fans the C(n, 3) participant sets across the
  // block scheduler by default (threads = 0); the maximum and witness
  // are identical to the serial scan at any thread count.
  std::cout << "== Exhaustive Table 2 verification at n = " << n
            << " (every 3-subset enumerated) ==\n";
  crp::harness::Table table({"b", "noCD exact worst", "n/2^b", "CD exact "
                             "worst", "log(n)-b", "witness (noCD)"});
  for (std::size_t b : {0ul, 2ul, 4ul, 6ul}) {
    const crp::core::SubtreeScanProtocol scan(n, b);
    const crp::core::TreeDescentCdProtocol descent(n, b);
    const crp::core::MinIdPrefixAdvice advice(n, b);
    const auto w_scan =
        crp::harness::exact_worst_case(scan, advice, n, 3, false);
    const auto w_descent =
        crp::harness::exact_worst_case(descent, advice, n, 3, true);
    std::string witness;
    for (std::size_t id : w_scan.witness) {
      witness += (witness.empty() ? "{" : ",") + std::to_string(id);
    }
    witness += "}";
    table.add_row({fmt(b), fmt(w_scan.rounds),
                   fmt(double(n) / std::exp2(double(b)), 0),
                   fmt(w_descent.rounds),
                   fmt(std::log2(double(n)) - double(b), 0), witness});
  }
  table.print(std::cout);
  std::cout << "(exact maxima over all C(64,3) participant sets — the "
               "Table 2 worst cases to the round, with witnesses)\n\n";
}

// ---- microbenchmarks: exact-analysis kernels ----

void BM_ExactProfileNoCd(benchmark::State& state) {
  const crp::baselines::DecaySchedule decay(kNetwork);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crp::harness::exact_profile_no_cd(
        decay, 1000, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_ExactProfileNoCd)->Arg(100)->Arg(10000);

void BM_ExactProfileCd(benchmark::State& state) {
  const crp::baselines::WillardPolicy willard(kNetwork);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crp::harness::exact_profile_cd(
        willard, 1000, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_ExactProfileCd)->Arg(16)->Arg(24);

void BM_ExactWorstCase(benchmark::State& state) {
  constexpr std::size_t n = 32;
  const crp::core::SubtreeScanProtocol protocol(n, 2);
  const crp::core::MinIdPrefixAdvice advice(n, 2);
  for (auto _ : state) {
    // threads = 1 pins the serial kernel; the parallel fan-out is
    // covered by tests/harness_adversary_test.cpp.
    benchmark::DoNotOptimize(crp::harness::exact_worst_case(
        protocol, advice, n, static_cast<std::size_t>(state.range(0)),
        false, 1 << 16, /*threads=*/1));
  }
}
BENCHMARK(BM_ExactWorstCase)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  if (crp::bench::consume_skip_tables(argc, argv)) {
    print_entropy_profiles();
    print_divergence_profiles();
    print_exact_adversary();
  }
  benchmark::Initialize(&argc, argv);
  crp::bench::report_kernel_tier();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
