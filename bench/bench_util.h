// Shared helpers for the bench mains: the --skip-tables flag (strip
// it before benchmark::Initialize sees argv) and the fast-path
// MeasureOptions every Monte-Carlo sweep uses.
#pragma once

#include <cstddef>
#include <string_view>

#include "harness/measure.h"

namespace crp::bench {

/// Strips --skip-tables from argv and returns true when the
/// reproduction tables should print (i.e. the flag was absent).
inline bool consume_skip_tables(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--skip-tables") {
      // Shift including argv[argc], preserving the NULL sentinel.
      for (int j = i; j < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return false;
    }
  }
  return true;
}

/// Fast path for the Monte-Carlo sweeps: analytic no-CD engine, all
/// hardware threads (statistics match the seed serial loop up to
/// Monte-Carlo noise; see tests/batch_engine_test.cpp).
inline harness::MeasureOptions fast(std::size_t max_rounds) {
  return harness::MeasureOptions{.max_rounds = max_rounds};
}

}  // namespace crp::bench
