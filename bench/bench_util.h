// Shared helpers for the bench mains: the --skip-tables flag (strip
// it before benchmark::Initialize sees argv), the fast-path
// MeasureOptions every Monte-Carlo sweep uses, and the peak-RSS
// counter the memory-scaling benches report.
#pragma once

#include <cstddef>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <benchmark/benchmark.h>

#include "channel/kernels/kernels.h"
#include "harness/measure.h"

namespace crp::bench {

/// Records the dispatched kernel ISA tier in the benchmark context
/// (JSON `context.crp_kernel_tier` and the console header), so a
/// committed baseline always says which (bit-compatible) kernels
/// produced its numbers. Call after benchmark::Initialize.
inline void report_kernel_tier() {
  benchmark::AddCustomContext("crp_kernel_tier",
                              crp::channel::kernel_tier_name());
}

/// Strips --skip-tables from argv and returns true when the
/// reproduction tables should print (i.e. the flag was absent).
inline bool consume_skip_tables(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--skip-tables") {
      // Shift including argv[argc], preserving the NULL sentinel.
      for (int j = i; j < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      return false;
    }
  }
  return true;
}

/// Fast path for the Monte-Carlo sweeps: analytic no-CD engine, all
/// hardware threads, streaming histogram fold (statistics match the
/// seed serial loop up to Monte-Carlo noise; see
/// tests/batch_engine_test.cpp and tests/accumulator_test.cpp).
inline harness::MeasureOptions fast(std::size_t max_rounds) {
  return harness::MeasureOptions{.max_rounds = max_rounds};
}

/// Process-wide peak resident set size in MB (0 where unsupported).
/// A monotone high-water mark: report it as a benchmark counter (the
/// streaming benches do) and compare across arguments in one run —
/// flat counters mean the benchmark added no resident memory.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

}  // namespace crp::bench
