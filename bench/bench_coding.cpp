// Reproduction of the information-theoretic machinery (Section 2.2-2.4):
//   Theorem 2.2 (Source Coding): H <= E[S] <= H + 1 for optimal codes;
//   Theorem 2.3 (mismatched):    H + D <= E[S] <= H + D + 1;
//   Lemma 2.5 / 2.7: RF-Construction + target-distance coding turns the
//     no-CD algorithms into codes whose length certifies the bound;
//   Lemma 2.9 / 2.11: same chain for collision detection via trees.
// Ablation: Huffman vs Shannon-Fano as the code backing Section 2.6.
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/measure.h"
#include "harness/table.h"
#include "info/coding_theorems.h"
#include "info/distribution.h"
#include "info/huffman.h"
#include "predict/families.h"
#include "rangefind/coding.h"
#include "rangefind/sequence.h"
#include "rangefind/tree.h"

namespace {

constexpr std::size_t kNetwork = 1 << 16;
constexpr std::uint64_t kSeed = 141421;
using crp::harness::fmt;

void print_source_coding() {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  std::cout << "== Theorems 2.2 / 2.3 on the condensed sources ==\n";
  crp::harness::Table table({"source", "H", "huffman E[S]",
                             "H<=E[S]<=H+1", "D_KL to zipf(1)",
                             "mismatched E[S]", "H+D<=E[S]<=H+D+1"});
  const auto design = crp::predict::zipf_ranges(ranges, 1.0);
  const auto design_code =
      crp::info::shannon_fano_code(design.probabilities());
  const auto row = [&](const std::string& name,
                       const crp::info::CondensedDistribution& source) {
    const auto code = crp::info::huffman_code(source.probabilities());
    const auto own = crp::info::check_source_coding(
        code, source.probabilities());
    const auto cross = crp::info::check_mismatched_coding(
        design_code, source.probabilities(), design.probabilities());
    table.add_row(
        {name, fmt(own.entropy, 3), fmt(own.expected_length, 3),
         own.lower_bound_holds && own.upper_bound_holds ? "yes" : "NO",
         fmt(cross.divergence, 3), fmt(cross.expected_length, 3),
         cross.lower_bound_holds && cross.upper_bound_holds ? "yes"
                                                            : "NO"});
  };
  row("uniform", crp::info::CondensedDistribution::uniform(ranges));
  row("geometric(0.5)", crp::predict::geometric_ranges(ranges, 0.5));
  row("zipf(1.5)", crp::predict::zipf_ranges(ranges, 1.5));
  row("bimodal", crp::predict::bimodal_ranges(ranges, 3, 12, 0.2));
  row("point mass", crp::info::CondensedDistribution::point_mass(ranges, 7));
  table.print(std::cout);
  std::cout << '\n';
}

void print_rf_chain() {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  const double radius = std::log2(std::log2(double(kNetwork)));
  std::cout << "== Lemma 2.5/2.7 chain: RF-Construction codes from the "
               "no-CD algorithms ==\n";
  crp::harness::Table table({"algorithm", "targets", "H", "E[RF steps]",
                             "E[code bits]", ">= H?"});
  const crp::baselines::DecaySchedule decay(kNetwork);
  const auto geometric = crp::predict::geometric_ranges(ranges, 0.5);
  const crp::core::LikelihoodOrderedSchedule likelihood(geometric);
  const auto row = [&](const std::string& name,
                       const crp::channel::ProbabilitySchedule& algo,
                       const crp::info::CondensedDistribution& targets) {
    const auto seq = crp::rangefind::rf_construction(algo, 600, kNetwork);
    const crp::rangefind::SequenceTargetDistanceCode code(seq, radius);
    const auto [bits, mass] = code.expected_length(targets);
    table.add_row({name, fmt(targets.entropy(), 2) + "-entropy",
                   fmt(targets.entropy(), 3),
                   fmt(seq.expected_time(targets, radius), 2),
                   fmt(bits, 3),
                   bits + 1e-9 >= targets.entropy() ? "yes" : "NO"});
    (void)mass;
  };
  row("decay", decay, crp::info::CondensedDistribution::uniform(ranges));
  row("decay", decay, geometric);
  row("likelihood-ordered", likelihood, geometric);
  row("likelihood-ordered", likelihood,
      crp::info::CondensedDistribution::uniform(ranges));
  table.print(std::cout);
  std::cout << '\n';

  std::cout << "== Lemma 2.9/2.11 chain: tree codes from the CD "
               "algorithms ==\n";
  crp::harness::Table tree_table(
      {"algorithm", "H", "E[RF depth]", "E[code bits]", ">= H?"});
  const crp::baselines::WillardPolicy willard(kNetwork);
  const crp::core::CodedSearchPolicy coded(geometric);
  const double radius_cd =
      std::log2(std::log2(std::log2(double(kNetwork)))) + 1.0;
  const auto tree_row =
      [&](const std::string& name, const crp::channel::CollisionPolicy& algo,
          const crp::info::CondensedDistribution& targets) {
        const auto tree = crp::rangefind::RangeFindingTree::from_policy(
            algo, kNetwork, 8);
        const crp::rangefind::TreeTargetDistanceCode code(tree, radius_cd);
        const auto [bits, mass] = code.expected_length(targets);
        tree_table.add_row(
            {name, fmt(targets.entropy(), 3),
             fmt(tree.expected_time(targets, radius_cd), 2), fmt(bits, 3),
             bits + 1e-9 >= targets.entropy() ? "yes" : "NO"});
        (void)mass;
      };
  tree_row("willard", willard,
           crp::info::CondensedDistribution::uniform(ranges));
  tree_row("willard", willard, geometric);
  tree_row("coded-search", coded, geometric);
  tree_table.print(std::cout);
  std::cout << '\n';
}

void print_backend_ablation() {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  std::cout << "== Ablation: Huffman vs Shannon-Fano backing the CD "
               "algorithm ==\n";
  crp::harness::Table table({"prediction", "huffman mean rounds",
                             "shannon-fano mean rounds"});
  for (double s : {0.5, 1.0, 2.0}) {
    const auto condensed = crp::predict::zipf_ranges(ranges, s);
    const auto actual = crp::predict::lift(
        condensed, kNetwork, crp::predict::RangePlacement::kHighEndpoint);
    const crp::core::CodedSearchPolicy huffman(
        condensed, crp::core::CodeBackend::kHuffman);
    const crp::core::CodedSearchPolicy fano(
        condensed, crp::core::CodeBackend::kShannonFano);
    const auto m_huffman = crp::harness::measure_uniform_cd(
        huffman, actual, 5000, kSeed, crp::bench::fast(1 << 14));
    const auto m_fano = crp::harness::measure_uniform_cd(
        fano, actual, 5000, kSeed, crp::bench::fast(1 << 14));
    table.add_row({"zipf(" + fmt(s, 1) + ")",
                   fmt(m_huffman.rounds.mean, 2),
                   fmt(m_fano.rounds.mean, 2)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

// ---- microbenchmarks: coding kernels ----

void BM_HuffmanConstruction(benchmark::State& state) {
  const auto probs = crp::predict::zipf_ranges(
                         static_cast<std::size_t>(state.range(0)), 1.0)
                         .probabilities();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crp::info::huffman_code(probs));
  }
}
BENCHMARK(BM_HuffmanConstruction)->Arg(16)->Arg(64)->Arg(256);

void BM_RfConstruction(benchmark::State& state) {
  const crp::baselines::DecaySchedule decay(kNetwork);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crp::rangefind::rf_construction(
        decay, static_cast<std::size_t>(state.range(0)), kNetwork));
  }
}
BENCHMARK(BM_RfConstruction)->Arg(100)->Arg(1000);

void BM_TreeFromPolicy(benchmark::State& state) {
  const crp::baselines::WillardPolicy willard(kNetwork);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crp::rangefind::RangeFindingTree::from_policy(
        willard, kNetwork, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TreeFromPolicy)->Arg(6)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  if (crp::bench::consume_skip_tables(argc, argv)) {
    print_source_coding();
    print_rf_chain();
    print_backend_ablation();
  }
  benchmark::Initialize(&argc, argv);
  crp::bench::report_kernel_tier();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
