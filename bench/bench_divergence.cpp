// Reproduction of the divergence-sensitivity claims:
//   Theorem 2.12 (no CD): success w.p. >= 1/16 within O(2^T) rounds,
//       T = 2 H(c(X)) + 2 D_KL(c(X) || c(Y));
//   Theorem 2.16 (CD): success w.c.p. within O((H + D_KL)^2) rounds;
//   and the robustness remark: bounded-constant-factor prediction error
//   keeps D_KL = O(1), so such predictions stay useful.
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "channel/rng.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/fit.h"
#include "harness/measure.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "predict/noise.h"

namespace {

constexpr std::size_t kNetwork = 1 << 16;
constexpr std::size_t kTrials = 6000;
constexpr std::uint64_t kSeed = 271828;
using crp::bench::fast;
using crp::harness::fmt;

/// One divergence point: the (possibly corrupted) prediction and the
/// paper's two algorithms configured for it. Owned so sweep cells can
/// reference the members by pointer.
struct DivergencePoint {
  DivergencePoint(const crp::info::CondensedDistribution& truth,
                  crp::info::CondensedDistribution prediction_in)
      : prediction(std::move(prediction_in)),
        divergence(truth.kl_divergence(prediction)),
        schedule(prediction),
        policy(prediction) {}

  crp::info::CondensedDistribution prediction;
  double divergence;
  crp::core::LikelihoodOrderedSchedule schedule;
  crp::core::CodedSearchPolicy policy;
};

void print_divergence_sweep() {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  const auto truth = crp::predict::geometric_ranges(ranges, 0.35);
  const auto actual = crp::predict::lift(
      truth, kNetwork, crp::predict::RangePlacement::kHighEndpoint);
  const auto adversary = crp::predict::smooth_with_uniform(
      crp::predict::reverse_ranges(truth), 0.05);
  const double h = truth.entropy();
  std::cout << "== Divergence sweep (n = " << kNetwork
            << ", H(c(X)) = " << fmt(h, 2)
            << ", prediction = (1-t)*truth + t*reversed) ==\n";
  crp::harness::Table table({"D_KL(X||Y)", "2^(2H+2D) bound",
                             "noCD r@1/16", "noCD mean",
                             "(H+D)^2 bound", "CD mean"});

  std::vector<DivergencePoint> points;
  for (double t : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    points.emplace_back(truth,
                        crp::predict::mix(truth, adversary, 1.0 - t));
  }
  crp::harness::SweepGrid grid;
  for (const auto& point : points) {
    const crp::harness::SweepSizes sizes{.name = "divergence-truth",
                                         .distribution = &actual};
    grid.add_cell({.algorithm = {.name = "likelihood",
                                 .schedule = &point.schedule},
                   .sizes = sizes,
                   .max_rounds = 1 << 18});
    grid.add_cell({.algorithm = {.name = "coded", .policy = &point.policy},
                   .sizes = sizes,
                   .max_rounds = 1 << 14});
  }
  const auto results = crp::harness::run_sweep(
      grid.cells(), {.trials = kTrials, .seed = kSeed});

  std::vector<double> divergences;
  std::vector<double> nocd_means;
  std::vector<double> cd_means;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = points[i].divergence;
    const auto& no_cd = results[2 * i].measurement;
    const auto& cd = results[2 * i + 1].measurement;
    double r16 = 1.0;
    while (no_cd.solved_within(r16) < 1.0 / 16.0) r16 += 1.0;

    table.add_row({fmt(d, 3), fmt(std::exp2(2 * h + 2 * d), 1),
                   fmt(r16, 0), fmt(no_cd.rounds.mean, 2),
                   fmt((h + d + 1) * (h + d + 1), 1),
                   fmt(cd.rounds.mean, 2)});
    divergences.push_back(d);
    nocd_means.push_back(no_cd.rounds.mean);
    cd_means.push_back(cd.rounds.mean);
  }
  table.print(std::cout);
  std::cout << "shape check: spearman(D_KL, noCD mean) = "
            << fmt(crp::harness::spearman(divergences, nocd_means), 3)
            << ", spearman(D_KL, CD mean) = "
            << fmt(crp::harness::spearman(divergences, cd_means), 3)
            << " (paper: both increase with divergence)\n\n";
}

void print_bounded_factor_robustness() {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  const auto truth = crp::predict::geometric_ranges(ranges, 0.35);
  const auto actual = crp::predict::lift(
      truth, kNetwork, crp::predict::RangePlacement::kHighEndpoint);
  std::cout << "== Bounded-factor robustness (D_KL <= 2 log2 c stays "
               "O(1)) ==\n";
  crp::harness::Table table(
      {"jitter factor c", "measured D_KL", "noCD mean", "vs exact"});

  // Exact prediction first, then one jittered prediction per factor;
  // all share the workload, so the grid is exact-cell + factor cells.
  const std::vector<double> factors{1.0, 1.5, 2.0, 4.0, 8.0};
  std::vector<DivergencePoint> points;
  points.emplace_back(truth, truth);
  for (const double factor : factors) {
    auto rng = crp::channel::make_rng(kSeed + 7);
    points.emplace_back(
        truth, crp::predict::multiplicative_jitter(truth, factor, rng));
  }
  crp::harness::SweepGrid grid;
  for (const auto& point : points) {
    grid.add_cell({.algorithm = {.name = "likelihood",
                                 .schedule = &point.schedule},
                   .sizes = {.name = "jitter-truth", .distribution = &actual},
                   .max_rounds = 1 << 18});
  }
  const auto results = crp::harness::run_sweep(
      grid.cells(), {.trials = kTrials, .seed = kSeed + 2});

  const double exact_mean = results[0].measurement.rounds.mean;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const auto& noisy = results[i + 1].measurement;
    table.add_row({fmt(factors[i], 1),
                   fmt(points[i + 1].divergence, 3),
                   fmt(noisy.rounds.mean, 2),
                   fmt(noisy.rounds.mean / exact_mean, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_learned_predictor() {
  const auto truth = crp::predict::log_normal_sizes(kNetwork, 7.0, 1.2);
  const auto condensed_truth = truth.condense();
  std::cout << "== Learned predictor: rounds improve 'for free' as the "
               "model sees more samples ==\n";
  crp::harness::Table table(
      {"training samples", "D_KL(X||Y)", "noCD mean", "CD mean"});

  const std::vector<std::size_t> sample_counts{0, 3, 10, 100, 10000};
  std::vector<DivergencePoint> points;
  for (const std::size_t samples : sample_counts) {
    auto rng = crp::channel::make_rng(kSeed + 11);
    points.emplace_back(
        condensed_truth,
        crp::predict::empirical_predictor(truth, samples, 0.5, rng));
  }
  crp::harness::SweepGrid grid;
  for (const auto& point : points) {
    const crp::harness::SweepSizes sizes{.name = "lognormal-truth",
                                         .distribution = &truth};
    grid.add_cell({.algorithm = {.name = "likelihood",
                                 .schedule = &point.schedule},
                   .sizes = sizes,
                   .max_rounds = 1 << 18});
    grid.add_cell({.algorithm = {.name = "coded", .policy = &point.policy},
                   .sizes = sizes,
                   .max_rounds = 1 << 14});
  }
  const auto results = crp::harness::run_sweep(
      grid.cells(), {.trials = kTrials, .seed = kSeed + 3});

  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({fmt(sample_counts[i]), fmt(points[i].divergence, 3),
                   fmt(results[2 * i].measurement.rounds.mean, 2),
                   fmt(results[2 * i + 1].measurement.rounds.mean, 2)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

// ---- microbenchmarks ----

void BM_KlDivergence(benchmark::State& state) {
  const std::size_t ranges = static_cast<std::size_t>(state.range(0));
  const auto p = crp::predict::geometric_ranges(ranges, 0.5);
  const auto q = crp::predict::smooth_with_uniform(p, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.kl_divergence(q));
  }
}
BENCHMARK(BM_KlDivergence)->Arg(16)->Arg(64);

void BM_EmpiricalPredictor(benchmark::State& state) {
  const auto truth = crp::predict::log_normal_sizes(kNetwork, 7.0, 1.2);
  auto rng = crp::channel::make_rng(kSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crp::predict::empirical_predictor(
        truth, static_cast<std::size_t>(state.range(0)), 0.5, rng));
  }
}
BENCHMARK(BM_EmpiricalPredictor)->Arg(100)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  if (crp::bench::consume_skip_tables(argc, argv)) {
    print_divergence_sweep();
    print_bounded_factor_robustness();
    print_learned_predictor();
  }
  benchmark::Initialize(&argc, argv);
  crp::bench::report_kernel_tier();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
