// Reproduction of Table 1: entropy-parameterized bounds for contention
// resolution with network size predictions (accurate predictions,
// Y = X).
//
//   paper row                      | measured column
//   -------------------------------+----------------------------------
//   no-CD lower  Omega(2^H/llog n) | E[steps] of the RF chain and the
//                                  | decay baseline vs 2^H/log log n
//   no-CD upper  O(2^{2H}) w.c.p.  | rounds at which the Section 2.5
//                                  | algorithm has succeeded w.p. 1/16
//   CD lower     H/2 - O(llllog n) | E[code len] of the tree RF chain
//   CD upper     O(H^2) w.c.p.     | rounds at which the Section 2.6
//                                  | algorithm has succeeded w.c.p.
//
// Absolute constants are simulator-specific; the reproduced claim is
// the growth law in H and the ordering of the cells.
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/fit.h"
#include "harness/grids.h"
#include "harness/measure.h"
#include "harness/shard.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "rangefind/coding.h"
#include "rangefind/sequence.h"
#include "rangefind/tree.h"

namespace {

constexpr std::size_t kNetwork = 1 << 16;  // 16 geometric ranges
constexpr std::size_t kTrials = 6000;
constexpr std::uint64_t kSeed = 20210526;  // arXiv submission date

using crp::bench::fast;
using crp::harness::fmt;
using crp::harness::MeasureOptions;
using crp::harness::NoCdEngine;

/// The seed configuration: serial, exact per-round binomial loop.
MeasureOptions seed_path(std::size_t max_rounds) {
  return MeasureOptions{
      .max_rounds = max_rounds, .threads = 1, .engine = NoCdEngine::kBinomial};
}

// The Table 1 entropy points and upper-bound grid are the shared
// reference definitions in harness/grids.h — the same cells the
// crp_shard CLI runs, so sharded "table1" runs reproduce exactly this
// bench's grid.
using crp::harness::table1_entropy_points;
using crp::harness::table1_upper_bound_grid;

void print_upper_bounds() {
  const auto points = table1_entropy_points(kNetwork);
  std::cout << "== Table 1 upper bounds (Y = X, n = " << kNetwork
            << ", trials = " << kTrials << ") ==\n";
  const auto results = crp::harness::run_sweep(
      table1_upper_bound_grid(points), {.trials = kTrials, .seed = kSeed});
  crp::harness::Table table(
      {"H(c(X))", "2^2H bound", "noCD r@1/16", "noCD p90", "noCD mean",
       "H^2 bound", "CD r@const", "CD p90", "CD mean"});
  std::vector<double> h_values;
  std::vector<double> nocd_p90;
  std::vector<double> cd_mean;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double h = points[i].h;
    const auto& no_cd = results[2 * i].measurement;
    const auto& cd = results[2 * i + 1].measurement;

    // Smallest round budget at which >= 1/16 of one-shot executions
    // have succeeded (the Theorem 2.12 success criterion). The p90
    // column exposes the exponential tail growth the bound tracks.
    double r16 = 1.0;
    while (no_cd.solved_within(r16) < 1.0 / 16.0) r16 += 1.0;
    double r_cd = 1.0;
    while (cd.solved_within(r_cd) < 0.25) r_cd += 1.0;

    table.add_row({fmt(h, 2), fmt(std::exp2(2.0 * h), 1), fmt(r16, 0),
                   fmt(no_cd.rounds.p90, 1), fmt(no_cd.rounds.mean, 2),
                   fmt((h + 1.0) * (h + 1.0), 1), fmt(r_cd, 0),
                   fmt(cd.rounds.p90, 1), fmt(cd.rounds.mean, 2)});
    h_values.push_back(h);
    nocd_p90.push_back(no_cd.rounds.p90);
    cd_mean.push_back(cd.rounds.mean);
  }
  table.print(std::cout);
  std::cout << "shape check: spearman(H, noCD p90) = "
            << fmt(crp::harness::spearman(h_values, nocd_p90), 3)
            << " (paper: strictly increasing, exponential in H)\n\n";
}

void print_lower_bounds() {
  const double loglog = std::log2(std::log2(double(kNetwork)));
  std::cout << "== Table 1 lower bounds (reduction chain, n = " << kNetwork
            << ") ==\n";
  crp::harness::Table table(
      {"H(c(X))", "2^H/llog bound", "seq E[code] >= H?", "decay mean",
       "H/2 bound", "tree E[code] >= H?", "willard mean"});
  const crp::baselines::DecaySchedule decay(kNetwork);
  const crp::baselines::WillardPolicy willard(kNetwork);
  const auto seq = crp::rangefind::rf_construction(decay, 600, kNetwork);
  const auto tree =
      crp::rangefind::RangeFindingTree::from_policy(willard, kNetwork, 8);
  const crp::rangefind::SequenceTargetDistanceCode seq_code(seq, loglog);
  const double lll =
      std::log2(std::log2(std::log2(double(kNetwork)))) + 1.0;
  const crp::rangefind::TreeTargetDistanceCode tree_code(tree, lll);

  // The baselines against every entropy point's lifted distribution:
  // one grid, fixed algorithms crossed by hand with the per-point
  // workloads.
  const auto points = table1_entropy_points(kNetwork);
  crp::harness::SweepGrid grid;
  for (const auto& point : points) {
    const crp::harness::SweepSizes sizes{
        .name = "H=" + fmt(point.h, 2), .distribution = &point.actual};
    grid.add_cell({.algorithm = {.name = "decay", .schedule = &decay},
                   .sizes = sizes,
                   .max_rounds = 1 << 18});
    grid.add_cell({.algorithm = {.name = "willard", .policy = &willard},
                   .sizes = sizes,
                   .max_rounds = 1 << 14});
  }
  const auto results = crp::harness::run_sweep(
      grid.cells(), {.trials = kTrials / 2, .seed = kSeed + 2});

  for (std::size_t i = 0; i < points.size(); ++i) {
    const double h = points[i].h;
    const auto [seq_bits, seq_mass] =
        seq_code.expected_length(points[i].condensed);
    const auto [tree_bits, tree_mass] =
        tree_code.expected_length(points[i].condensed);
    const auto& m_decay = results[2 * i].measurement;
    const auto& m_willard = results[2 * i + 1].measurement;
    table.add_row(
        {fmt(h, 2), fmt(std::exp2(h) / loglog, 2),
         fmt(seq_bits, 2) + (seq_bits + 1e-9 >= h ? " yes" : " NO"),
         fmt(m_decay.rounds.mean, 2), fmt(h / 2.0, 2),
         fmt(tree_bits, 2) + (tree_bits + 1e-9 >= h ? " yes" : " NO"),
         fmt(m_willard.rounds.mean, 2)});
    (void)seq_mass;
    (void)tree_mass;
  }
  table.print(std::cout);
  std::cout << "(E[code length] >= H is the Source Coding Theorem step "
               "that forces both lower bounds.)\n\n";
}

void print_pliam_conjecture() {
  std::cout << "== Section 2.5 conjecture support (Pliam): guesswork / "
               "2^H is unbounded ==\n";
  crp::harness::Table table({"alphabet m", "H(spiked)", "2^H",
                             "E[guesswork]", "ratio"});
  for (std::size_t m : {64ul, 256ul, 1024ul, 4096ul, 16384ul}) {
    const auto source = crp::predict::spiked_uniform(m, 0.5);
    const double h = source.entropy();
    const double guesses = crp::predict::expected_guesswork(source);
    table.add_row({fmt(m), fmt(h, 2), fmt(std::exp2(h), 1),
                   fmt(guesses, 1), fmt(guesses / std::exp2(h), 2)});
  }
  table.print(std::cout);
  std::cout << "(E[guesswork] is the expected probe index of the Section "
               "2.5 strategy, so no alpha * 2^H round budget suffices "
               "for every source — supporting the paper's conjecture "
               "that the extra factor in the 2^{2H} exponent is real.)"
               "\n\n";
}

// ---- PR 1 acceptance benchmark: Table 1 no-CD sweep, seed vs fast ----
//
// The exact workload of print_upper_bounds' no-CD column (same entropy
// sweep, same trial counts, same seeds), measured end to end through
// the seed configuration (serial, per-round binomial loop) and the
// fast path (analytic batch engine + thread pool). The speedup target
// for this PR is >= 10x; compare the two entries in BENCH_table1.json.

void Table1NoCdSweep(benchmark::State& state,
                     const MeasureOptions& options) {
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  double checksum = 0.0;
  for (auto _ : state) {
    for (std::size_t m = 1; m <= ranges; m *= 2) {
      const auto condensed = crp::predict::uniform_over_ranges(ranges, m);
      const auto actual = crp::predict::lift(
          condensed, kNetwork, crp::predict::RangePlacement::kHighEndpoint);
      const crp::core::LikelihoodOrderedSchedule schedule(condensed);
      const auto no_cd = crp::harness::measure_uniform_no_cd(
          schedule, actual, kTrials, kSeed, options);
      checksum += no_cd.rounds.mean;
    }
    benchmark::DoNotOptimize(checksum);
  }
}

void BM_Table1NoCdSweepSeedSerial(benchmark::State& state) {
  Table1NoCdSweep(state, seed_path(1 << 18));
}
BENCHMARK(BM_Table1NoCdSweepSeedSerial)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_Table1NoCdSweepBatchParallel(benchmark::State& state) {
  Table1NoCdSweep(state, fast(1 << 18));
}
BENCHMARK(BM_Table1NoCdSweepBatchParallel)->Unit(benchmark::kMillisecond);

// ---- PR 4 acceptance benchmark: streaming fold at 10^7 trials ----
//
// One Table 1 entropy cell pushed to trial counts where the
// sample-vector fold would dominate memory (10^7 trials ~ 80 MB of
// samples plus a sort; 10^8 ~ 800 MB). The streaming histogram fold
// keeps per-cell memory flat, which the peak_rss_mb counter exposes:
// it is a process-wide high-water mark, so if the fold resident
// memory grew with the trial count the 10x argument would report a
// strictly larger counter. compare_benches.py --rss-gate fails CI
// when the counter exceeds its ceiling.

void BM_Table1NoCdSweepStreaming(benchmark::State& state) {
  const auto trials = static_cast<std::size_t>(state.range(0));
  const std::size_t ranges = crp::info::num_ranges(kNetwork);
  const auto condensed = crp::predict::uniform_over_ranges(ranges, 6);
  const auto actual = crp::predict::lift(
      condensed, kNetwork, crp::predict::RangePlacement::kHighEndpoint);
  const crp::core::LikelihoodOrderedSchedule schedule(condensed);
  double checksum = 0.0;
  for (auto _ : state) {
    const auto cell = crp::harness::measure_uniform_no_cd(
        schedule, actual, trials, kSeed, fast(1 << 18));
    checksum += cell.rounds.mean;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["trials_per_cell"] = static_cast<double>(trials);
  state.counters["peak_rss_mb"] = crp::bench::peak_rss_mb();
}
BENCHMARK(BM_Table1NoCdSweepStreaming)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->Arg(1'000'000)
    ->Arg(10'000'000);

/// The no-CD likelihood cells of the entropy sweep — the shared
/// workload of the scheduler-vs-sharded benchmark pair below, built
/// in one place so the two grids cannot drift apart (their delta is
/// meaningful only while the cells are identical). `points` must
/// outlive the returned cells.
std::vector<crp::harness::SweepCell> likelihood_sweep_cells(
    const std::vector<crp::harness::Table1EntropyPoint>& points) {
  crp::harness::SweepGrid grid;
  for (const auto& point : points) {
    grid.add_cell({.algorithm = {.name = "likelihood",
                                 .schedule = &point.schedule},
                   .sizes = {.name = "H=" + fmt(point.h, 2),
                             .distribution = &point.actual},
                   .max_rounds = 1 << 18});
  }
  return grid.cells();
}

// The same workload one layer up: the whole entropy sweep declared as
// a grid and executed by the sweep scheduler in a single call (the
// PR 2 acceptance pair is this plus BM_Table1NoCdSweepBatchParallel).
void BM_Table1SweepScheduler(benchmark::State& state) {
  const auto points = table1_entropy_points(kNetwork);
  const auto cells = likelihood_sweep_cells(points);
  double checksum = 0.0;
  for (auto _ : state) {
    const auto results = crp::harness::run_sweep(
        cells, {.trials = kTrials, .seed = kSeed});
    for (const auto& result : results) checksum += result.measurement.rounds.mean;
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_Table1SweepScheduler)->Unit(benchmark::kMillisecond);

// ---- PR 5 acceptance benchmark: sharded vs. monolithic sweep ----
//
// The BM_Table1SweepScheduler workload cut into 3 shards by the
// shard driver (harness/shard.h) and reassembled with merge_shards —
// what a 3-process fleet runs, executed sequentially in one process
// here so the pair isolates the sharding overhead itself (planning,
// manifests, merge validation). The delta vs BM_Table1SweepScheduler
// is the price of the partition; the results are bit-identical
// (tests/shard_test.cpp), so the checksum matches the monolithic
// bench's exactly.
void BM_Table1SweepSharded(benchmark::State& state) {
  const auto points = table1_entropy_points(kNetwork);
  const auto cells = likelihood_sweep_cells(points);
  constexpr std::size_t kShards = 3;
  double checksum = 0.0;
  for (auto _ : state) {
    std::vector<crp::harness::ShardRun> shards;
    for (std::size_t i = 0; i < kShards; ++i) {
      shards.push_back(crp::harness::run_sweep_shard(
          cells, {.shard_count = kShards, .shard_index = i},
          {.trials = kTrials, .seed = kSeed}));
    }
    const auto merged = crp::harness::merge_shards(shards);
    for (const auto& result : merged) checksum += result.measurement.rounds.mean;
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_Table1SweepSharded)->Unit(benchmark::kMillisecond);

// ---- google-benchmark microbenchmarks: per-round simulation cost ----

void BM_NoCdRound(benchmark::State& state) {
  const auto condensed = crp::predict::uniform_over_ranges(
      crp::info::num_ranges(kNetwork),
      static_cast<std::size_t>(state.range(0)));
  const crp::core::LikelihoodOrderedSchedule schedule(condensed);
  const auto actual = crp::predict::lift(
      condensed, kNetwork, crp::predict::RangePlacement::kHighEndpoint);
  auto rng = crp::channel::make_rng(kSeed);
  std::size_t solved = 0;
  for (auto _ : state) {
    const std::size_t k = actual.sample(rng);
    const auto result =
        crp::channel::run_uniform_no_cd(schedule, k, rng, {1 << 18});
    solved += result.solved ? 1 : 0;
    benchmark::DoNotOptimize(solved);
  }
}
BENCHMARK(BM_NoCdRound)->Arg(1)->Arg(4)->Arg(16);

void BM_CdRound(benchmark::State& state) {
  const auto condensed = crp::predict::uniform_over_ranges(
      crp::info::num_ranges(kNetwork),
      static_cast<std::size_t>(state.range(0)));
  const crp::core::CodedSearchPolicy policy(condensed);
  const auto actual = crp::predict::lift(
      condensed, kNetwork, crp::predict::RangePlacement::kHighEndpoint);
  auto rng = crp::channel::make_rng(kSeed);
  std::size_t solved = 0;
  for (auto _ : state) {
    const std::size_t k = actual.sample(rng);
    const auto result =
        crp::channel::run_uniform_cd(policy, k, rng, {1 << 14});
    solved += result.solved ? 1 : 0;
    benchmark::DoNotOptimize(solved);
  }
}
BENCHMARK(BM_CdRound)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  if (crp::bench::consume_skip_tables(argc, argv)) {
    print_upper_bounds();
    print_lower_bounds();
    print_pliam_conjecture();
  }
  benchmark::Initialize(&argc, argv);
  crp::bench::report_kernel_tier();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
