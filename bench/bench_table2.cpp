// Reproduction of Table 2: tight bounds for contention resolution with
// b bits of perfect advice.
//
//   cell                     | paper bound             | protocol
//   --------------------------+-------------------------+---------------
//   deterministic, no CD     | Theta(n^{1-beta}/log n)* | subtree scan
//   deterministic, CD        | Theta(log n - b)         | tree descent
//   randomized, no CD        | Theta(log n / 2^b)       | trunc. decay
//   randomized, CD           | Theta(log log n - b)     | trunc. Willard
//
// (*) measured as worst-case rounds ~ n / 2^b for b = beta log n, the
// form the Theorem 3.4 tightness construction achieves.
// Also exercises the Theorem 3.3 foundation: non-interactive contention
// resolution needs >= log n advice bits.
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"

#include "channel/rng.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "core/advice_randomized.h"
#include "core/faulty_advice.h"
#include "harness/fit.h"
#include "harness/measure.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "rangefind/selective.h"

namespace {

constexpr std::uint64_t kSeed = 314159;
using crp::bench::fast;
using crp::harness::fmt;

void print_deterministic() {
  constexpr std::size_t n = 1 << 10;
  std::cout << "== Table 2, deterministic rows (n = " << n
            << ", worst-case rounds over probed participant sets) ==\n";
  crp::harness::Table table({"b", "n/2^b bound", "noCD worst",
                             "log(n)-b bound", "CD worst"});
  // The probe fan-out is thread-count invariant; run it on the pool.
  const crp::harness::MeasureOptions pooled{.max_rounds = 1 << 20,
                                            .threads = 0};
  for (std::size_t b : {0ul, 2ul, 4ul, 6ul, 8ul, 10ul}) {
    const crp::core::SubtreeScanProtocol scan(n, b);
    const crp::core::TreeDescentCdProtocol descent(n, b);
    const crp::core::MinIdPrefixAdvice advice(n, b);
    const double no_cd = crp::harness::worst_case_deterministic_rounds(
        scan, advice, n, /*k=*/4, false, /*probes=*/300, kSeed, pooled);
    const double cd = crp::harness::worst_case_deterministic_rounds(
        descent, advice, n, /*k=*/4, true, /*probes=*/300, kSeed + 1,
        pooled);
    table.add_row({fmt(b), fmt(double(n) / std::exp2(double(b)), 0),
                   fmt(no_cd, 0),
                   fmt(std::log2(double(n)) - double(b), 0), fmt(cd, 0)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

void print_randomized() {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 2500;  // range 12 of 16
  constexpr std::size_t trials = 6000;
  std::cout << "== Table 2, randomized rows (n = " << n << ", k = " << k
            << ", expected rounds) ==\n";
  crp::harness::Table table({"b", "log(n)/2^b bound", "noCD mean",
                             "loglog(n)-b bound", "CD mean"});
  std::vector<double> bs;
  std::vector<double> nocd_means;
  std::vector<std::size_t> participants(k);
  for (std::size_t i = 0; i < k; ++i) participants[i] = i;

  // One advice-budget point per b: the truncated baselines configured
  // for the advised range group, swept as fixed-k cells in one grid.
  struct BudgetPoint {
    BudgetPoint(std::size_t n, std::size_t b,
                const std::vector<std::size_t>& participants)
        : advice(n, b),
          group(crp::core::bits_to_index(advice.advise(participants))),
          decay(advice.ranges_in_group(group)),
          willard(advice.ranges_in_group(group)) {}

    crp::core::RangeGroupAdvice advice;
    std::size_t group;
    crp::core::TruncatedDecaySchedule decay;
    crp::core::TruncatedWillardPolicy willard;
  };
  const std::vector<std::size_t> budgets{0, 1, 2, 3, 4};
  std::vector<BudgetPoint> points;
  for (const std::size_t b : budgets) {
    points.emplace_back(n, b, participants);
  }
  crp::harness::SweepGrid grid;
  for (const auto& point : points) {
    const crp::harness::SweepSizes sizes{.fixed_k = k};
    grid.add_cell({.algorithm = {.name = "trunc-decay",
                                 .schedule = &point.decay},
                   .sizes = sizes,
                   .max_rounds = 1 << 14});
    grid.add_cell({.algorithm = {.name = "trunc-willard",
                                 .policy = &point.willard},
                   .sizes = sizes,
                   .max_rounds = 1 << 12});
  }
  const auto results = crp::harness::run_sweep(
      grid.cells(), {.trials = trials, .seed = kSeed + 2});

  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const std::size_t b = budgets[i];
    const auto& m_decay = results[2 * i].measurement;
    const auto& m_willard = results[2 * i + 1].measurement;
    table.add_row(
        {fmt(b), fmt(std::log2(double(n)) / std::exp2(double(b)), 2),
         fmt(m_decay.rounds.mean, 2),
         fmt(std::max(0.0, std::log2(std::log2(double(n))) - double(b)),
             2),
         fmt(m_willard.rounds.mean, 2)});
    bs.push_back(std::log2(double(n)) / std::exp2(double(b)));
    nocd_means.push_back(m_decay.rounds.mean);
  }
  table.print(std::cout);
  const auto fit = crp::harness::fit_through_origin(bs, nocd_means);
  std::cout << "shape check: noCD mean ~ " << fmt(fit.slope, 2)
            << " * log(n)/2^b  (R^2 = " << fmt(fit.r_squared, 3)
            << "; paper: Theta(log n / 2^b))\n\n";
}

void print_non_interactive() {
  std::cout << "== Theorem 3.3 foundation: non-interactive contention "
               "resolution ==\n";
  crp::harness::Table table({"n", "ceil(log n) bits", "min-id scheme ok",
                             "induced family selective"});
  for (std::size_t n : {4ul, 8ul, 12ul, 16ul}) {
    const auto scheme =
        crp::rangefind::NonInteractiveScheme::min_id_scheme(n);
    const bool correct = !scheme.find_violation().has_value();
    const bool selective = crp::rangefind::is_strongly_selective(
        scheme.induced_family(), n);
    table.add_row({fmt(n), fmt(scheme.advice_bits()),
                   correct ? "yes" : "NO", selective ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "(Theorem 3.2/3.3: any correct scheme induces an (n,n)-"
               "strongly selective family, hence needs >= log n bits.)\n\n";
}

void print_faulty_advice() {
  // Robustness sweep (the Section 1.3 theme): corrupt the advice bits
  // and watch the protocols degrade gracefully instead of failing.
  constexpr std::size_t n = 1 << 10;
  constexpr std::size_t b = 5;
  constexpr std::size_t trials = 1500;
  std::cout << "== Faulty advice: " << b << "-bit advisors with flipped "
               "bits (n = " << n << ", mean rounds) ==\n";
  crp::harness::Table table({"flip prob", "noCD scan", "CD descent",
                             "all solved"});
  const crp::core::SubtreeScanProtocol scan(n, b);
  const crp::core::TreeDescentCdProtocol descent(n, b);
  const auto inner = std::make_shared<crp::core::MinIdPrefixAdvice>(n, b);
  const auto sizes = crp::info::SizeDistribution::uniform(64);
  for (double flip : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    const crp::core::FaultyAdvice faulty(inner, flip, kSeed + 9);
    const auto m_scan = crp::harness::measure_deterministic_advice(
        scan, faulty, sizes, n, false, trials, kSeed + 10, fast(8 * n));
    const auto m_descent = crp::harness::measure_deterministic_advice(
        descent, faulty, sizes, n, true, trials, kSeed + 11, fast(8 * n));
    const bool all_solved =
        m_scan.success_rate == 1.0 && m_descent.success_rate == 1.0;
    table.add_row({fmt(flip, 2), fmt(m_scan.rounds.mean, 2),
                   fmt(m_descent.rounds.mean, 2),
                   all_solved ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "(wrong advice costs rounds — a wrong subtree scan falls "
               "back to a full sweep, a wrong descent escalates to the "
               "full tree — but never correctness)\n\n";
}

// ---- microbenchmarks ----

// The Table 2 randomized-CD sweep (truncated Willard at advice budgets
// b = 0..4, fixed k) once per engine: the per-round Markov simulation
// adapter vs the cached history-tree sampler
// (channel/history_engine.h), at equal trials. The pair quantifies the
// CD fast path the same way BM_Table1NoCdSweep* quantifies the no-CD
// one; bench/results/BENCH_table2.json tracks both.
void run_cd_sweep(benchmark::State& state,
                  crp::harness::CdEngine cd_engine) {
  constexpr std::size_t n = 1 << 16;
  constexpr std::size_t k = 2500;
  constexpr std::size_t trials = 6000;
  std::vector<std::size_t> participants(k);
  for (std::size_t i = 0; i < k; ++i) participants[i] = i;

  struct WillardPoint {
    WillardPoint(std::size_t n, std::size_t b,
                 const std::vector<std::size_t>& participants)
        : advice(n, b),
          willard(advice.ranges_in_group(
              crp::core::bits_to_index(advice.advise(participants)))) {}
    crp::core::RangeGroupAdvice advice;
    crp::core::TruncatedWillardPolicy willard;
  };
  std::vector<WillardPoint> points;
  for (const std::size_t b : {0, 1, 2, 3, 4}) {
    points.emplace_back(n, b, participants);
  }
  crp::harness::SweepGrid grid;
  for (const auto& point : points) {
    grid.add_cell({.algorithm = {.name = "trunc-willard",
                                 .policy = &point.willard},
                   .sizes = {.fixed_k = k},
                   .max_rounds = 1 << 12});
  }
  const auto cells = grid.cells();
  for (auto _ : state) {
    const auto results = crp::harness::run_sweep(
        cells, {.trials = trials, .seed = kSeed + 2,
                .cd_engine = cd_engine});
    benchmark::DoNotOptimize(results.back().measurement.rounds.mean);
  }
}

void BM_Table2CdSweepSimulated(benchmark::State& state) {
  run_cd_sweep(state, crp::harness::CdEngine::kSimulate);
}
BENCHMARK(BM_Table2CdSweepSimulated)->Unit(benchmark::kMillisecond);

void BM_Table2CdTreeSweep(benchmark::State& state) {
  run_cd_sweep(state, crp::harness::CdEngine::kHistoryTree);
}
BENCHMARK(BM_Table2CdTreeSweep)->Unit(benchmark::kMillisecond);

void BM_SubtreeScanWorstCase(benchmark::State& state) {
  constexpr std::size_t n = 1 << 10;
  const std::size_t b = static_cast<std::size_t>(state.range(0));
  const crp::core::SubtreeScanProtocol protocol(n, b);
  const crp::core::MinIdPrefixAdvice advice(n, b);
  std::vector<std::size_t> tail{n - 3, n - 2, n - 1};
  const auto bits = advice.advise(tail);
  for (auto _ : state) {
    const auto result = crp::channel::run_deterministic(
        protocol, bits, tail, false, {4 * n});
    benchmark::DoNotOptimize(result.rounds);
  }
}
BENCHMARK(BM_SubtreeScanWorstCase)->Arg(0)->Arg(4)->Arg(8);

void BM_TreeDescentWorstCase(benchmark::State& state) {
  constexpr std::size_t n = 1 << 10;
  const std::size_t b = static_cast<std::size_t>(state.range(0));
  const crp::core::TreeDescentCdProtocol protocol(n, b);
  const crp::core::MinIdPrefixAdvice advice(n, b);
  std::vector<std::size_t> head{0, 1, 2};
  const auto bits = advice.advise(head);
  for (auto _ : state) {
    const auto result = crp::channel::run_deterministic(
        protocol, bits, head, true, {4 * n});
    benchmark::DoNotOptimize(result.rounds);
  }
}
BENCHMARK(BM_TreeDescentWorstCase)->Arg(0)->Arg(4)->Arg(8);

void BM_NonInteractiveVerification(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto scheme = crp::rangefind::NonInteractiveScheme::min_id_scheme(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.find_violation());
  }
}
BENCHMARK(BM_NonInteractiveVerification)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  if (crp::bench::consume_skip_tables(argc, argv)) {
    print_deterministic();
    print_randomized();
    print_non_interactive();
    print_faulty_advice();
  }
  benchmark::Initialize(&argc, argv);
  crp::bench::report_kernel_tier();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
