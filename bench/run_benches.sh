#!/usr/bin/env bash
# Runs every reproduction bench and records the google-benchmark
# timings as BENCH_<name>.json (--benchmark_out_format=json), so the
# repo's perf trajectory is tracked PR over PR. Console output (the
# reproduction tables plus human-readable timings) is teed to
# BENCH_<name>.log in the same directory.
#
# Usage: bench/run_benches.sh [--quick] [--allow-non-release] \
#                              [BUILD_DIR] [OUT_DIR]
#   --quick    skip the reproduction tables and shorten benchmark
#              repetitions (CI smoke mode)
#   --allow-non-release
#              record numbers from a non-Release build anyway (smoke
#              runs where timings are not kept); committed baselines
#              must come from a Release build
#   BUILD_DIR  defaults to build
#   OUT_DIR    defaults to bench/results
set -euo pipefail

quick=0
allow_non_release=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --quick) quick=1 ;;
    --allow-non-release) allow_non_release=1 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done
build_dir=${1:-build}
out_dir=${2:-bench/results}

# Baselines from unoptimized builds are worthless for trend tracking
# (and once burned us: committed JSONs carried debug-build timings).
# The guard reads the build tree's own cache, not the benchmark
# library's build flavor that the JSON "library_build_type" reports.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$build_dir/CMakeCache.txt" 2>/dev/null || true)
if [[ "$build_type" != "Release" ]]; then
  msg="$build_dir is a '${build_type:-unknown}' build, not Release"
  if [[ $allow_non_release -eq 1 ]]; then
    echo "warning: $msg; timings are not baseline-grade" >&2
  else
    echo "error: $msg; rebuild with -DCMAKE_BUILD_TYPE=Release or pass" \
         "--allow-non-release for a throwaway run" >&2
    exit 1
  fi
fi
mkdir -p "$out_dir"

extra=()
if [[ $quick -eq 1 ]]; then
  extra+=(--skip-tables --benchmark_min_time=0.01)
fi

for name in table1 table2 baselines divergence profiles coding; do
  bin="$build_dir/bench_$name"
  if [[ ! -x "$bin" ]]; then
    echo "skipping bench_$name: $bin not built" >&2
    continue
  fi
  echo "== bench_$name =="
  "$bin" ${extra[@]+"${extra[@]}"} \
    --benchmark_out="$out_dir/BENCH_$name.json" \
    --benchmark_out_format=json \
    | tee "$out_dir/BENCH_$name.log"

  # Surface the memory-flatness counters of the streaming benches: a
  # peak_rss_mb that stays put while trials_per_cell grows 10x is the
  # histogram fold doing its job (compare_benches.py --rss-gate turns
  # this into a CI failure when a ceiling is exceeded).
  python3 - "$out_dir/BENCH_$name.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
# Which ISA tier the runtime dispatch picked (tiers are bit-identical;
# this is provenance for the timings, not for the statistics).
tier = data.get("context", {}).get("crp_kernel_tier")
if tier:
    print(f"  kernel tier: {tier}")
for bench in data.get("benchmarks", []):
    if "peak_rss_mb" in bench:
        print(f"  peak RSS: {bench['name']}: {bench['peak_rss_mb']:.1f} MB")
PYEOF
done
