#!/usr/bin/env bash
# Runs every reproduction bench and records the google-benchmark
# timings as BENCH_<name>.json (--benchmark_out_format=json), so the
# repo's perf trajectory is tracked PR over PR. Console output (the
# reproduction tables plus human-readable timings) is teed to
# BENCH_<name>.log in the same directory.
#
# Usage: bench/run_benches.sh [--quick] [BUILD_DIR] [OUT_DIR]
#   --quick    skip the reproduction tables and shorten benchmark
#              repetitions (CI smoke mode)
#   BUILD_DIR  defaults to build
#   OUT_DIR    defaults to bench/results
set -euo pipefail

quick=0
if [[ "${1:-}" == "--quick" ]]; then
  quick=1
  shift
fi
build_dir=${1:-build}
out_dir=${2:-bench/results}
mkdir -p "$out_dir"

extra=()
if [[ $quick -eq 1 ]]; then
  extra+=(--skip-tables --benchmark_min_time=0.01)
fi

for name in table1 table2 baselines divergence profiles coding; do
  bin="$build_dir/bench_$name"
  if [[ ! -x "$bin" ]]; then
    echo "skipping bench_$name: $bin not built" >&2
    continue
  fi
  echo "== bench_$name =="
  "$bin" ${extra[@]+"${extra[@]}"} \
    --benchmark_out="$out_dir/BENCH_$name.json" \
    --benchmark_out_format=json \
    | tee "$out_dir/BENCH_$name.log"

  # Surface the memory-flatness counters of the streaming benches: a
  # peak_rss_mb that stays put while trials_per_cell grows 10x is the
  # histogram fold doing its job (compare_benches.py --rss-gate turns
  # this into a CI failure when a ceiling is exceeded).
  python3 - "$out_dir/BENCH_$name.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
for bench in data.get("benchmarks", []):
    if "peak_rss_mb" in bench:
        print(f"  peak RSS: {bench['name']}: {bench['peak_rss_mb']:.1f} MB")
PYEOF
done
