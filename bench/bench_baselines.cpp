// Reproduction of the Section 1.1 context bounds the paper builds on:
//   decay [2]        O(log n) expected, no CD;
//   Willard [22]     O(log log n) expected, CD;
//   fixed 1/k-hat    O(1) expected given an accurate size estimate;
// and the crossover story: the prediction-augmented algorithms
// interpolate between the O(1) best case (low entropy) and the
// worst-case bounds (max entropy).
// Also ablates the two simulation engines (binomial vs per-player) and
// the decay sweep direction.
#include <cmath>
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "baselines/aloha.h"
#include "baselines/decay.h"
#include "baselines/simple.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/fit.h"
#include "harness/measure.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace {

constexpr std::uint64_t kSeed = 16180;
constexpr std::size_t kTrials = 5000;
using crp::bench::fast;
using crp::harness::fmt;
using crp::harness::MeasureOptions;
using crp::harness::NoCdEngine;

/// Exact per-round engine, pooled — for the engine-ablation rows where
/// the engine choice is the point.
MeasureOptions pooled(std::size_t max_rounds, NoCdEngine engine) {
  return MeasureOptions{.max_rounds = max_rounds, .engine = engine};
}

void print_worst_case_scaling() {
  std::cout << "== Baseline worst-case scaling (k = n - 1, expected "
               "rounds) ==\n";
  crp::harness::Table table({"n", "log n", "decay", "loglog n", "willard",
                             "fixed 1/k"});
  std::vector<double> logn;
  std::vector<double> decay_means;
  for (std::size_t bits : {6ul, 8ul, 10ul, 12ul, 14ul, 16ul}) {
    const std::size_t n = std::size_t{1} << bits;
    const std::size_t k = n - 1;
    const crp::baselines::DecaySchedule decay(n);
    const crp::baselines::WillardPolicy willard(n);
    const auto fixed =
        crp::baselines::FixedProbabilitySchedule::for_size_estimate(k);
    const auto m_decay = crp::harness::measure_uniform_no_cd_fixed_k(
        decay, k, kTrials, kSeed, fast(1 << 16));
    const auto m_willard = crp::harness::measure_uniform_cd_fixed_k(
        willard, k, kTrials, kSeed + 1, fast(1 << 14));
    const auto m_fixed = crp::harness::measure_uniform_no_cd_fixed_k(
        fixed, k, kTrials, kSeed + 2, fast(1 << 12));
    table.add_row({fmt(n), fmt(double(bits), 0),
                   fmt(m_decay.rounds.mean, 2),
                   fmt(std::log2(double(bits)), 2),
                   fmt(m_willard.rounds.mean, 2),
                   fmt(m_fixed.rounds.mean, 2)});
    logn.push_back(double(bits));
    decay_means.push_back(m_decay.rounds.mean);
  }
  table.print(std::cout);
  const auto fit = crp::harness::fit_linear(logn, decay_means);
  std::cout << "shape check: decay mean ~ " << fmt(fit.slope, 2)
            << " * log n + " << fmt(fit.intercept, 2)
            << " (R^2 = " << fmt(fit.r_squared, 3)
            << "; paper: Theta(log n))\n\n";
}

void print_prediction_crossover() {
  constexpr std::size_t n = 1 << 14;
  const std::size_t ranges = crp::info::num_ranges(n);
  std::cout << "== Crossover: predictions vs worst-case baselines (n = "
            << n << ") ==\n";
  crp::harness::Table table({"H(c(X))", "likelihood noCD", "decay noCD",
                             "coded CD", "willard CD"});
  const crp::baselines::DecaySchedule decay(n);
  const crp::baselines::WillardPolicy willard(n);
  for (std::size_t m = 1; m <= ranges; m *= 2) {
    const auto condensed = crp::predict::uniform_over_ranges(ranges, m);
    const auto actual = crp::predict::lift(
        condensed, n, crp::predict::RangePlacement::kHighEndpoint);
    const crp::core::LikelihoodOrderedSchedule schedule(condensed);
    const crp::core::CodedSearchPolicy policy(condensed);
    const auto m_pred_nocd = crp::harness::measure_uniform_no_cd(
        schedule, actual, kTrials, kSeed + 3, fast(1 << 18));
    const auto m_decay = crp::harness::measure_uniform_no_cd(
        decay, actual, kTrials, kSeed + 3, fast(1 << 18));
    const auto m_pred_cd = crp::harness::measure_uniform_cd(
        policy, actual, kTrials, kSeed + 4, fast(1 << 14));
    const auto m_willard = crp::harness::measure_uniform_cd(
        willard, actual, kTrials, kSeed + 4, fast(1 << 14));
    table.add_row({fmt(condensed.entropy(), 2),
                   fmt(m_pred_nocd.rounds.mean, 2),
                   fmt(m_decay.rounds.mean, 2),
                   fmt(m_pred_cd.rounds.mean, 2),
                   fmt(m_willard.rounds.mean, 2)});
  }
  table.print(std::cout);
  std::cout << "(paper: predictions win at low entropy and approach the "
               "worst-case baselines as H maxes out)\n\n";
}

void print_engine_ablation() {
  constexpr std::size_t n = 1 << 10;
  constexpr std::size_t k = 500;
  std::cout << "== Ablation: binomial vs per-player vs batch engine, and "
               "decay sweep direction (n = " << n << ", k = " << k
            << ") ==\n";
  crp::harness::Table table({"variant", "mean rounds", "p90"});
  const crp::baselines::DecaySchedule decay(n);
  const crp::baselines::ReverseDecaySchedule reverse(n);
  const auto m_binomial = crp::harness::measure_uniform_no_cd_fixed_k(
      decay, k, kTrials, kSeed + 5, pooled(1 << 14, NoCdEngine::kBinomial));
  const auto m_players = crp::harness::measure_parallel(
      [&](std::size_t, std::mt19937_64& rng) {
        return crp::channel::run_uniform_no_cd_per_player(decay, k, rng,
                                                          {1 << 14});
      },
      kTrials, kSeed + 5);
  const auto m_batch = crp::harness::measure_uniform_no_cd_fixed_k(
      decay, k, kTrials, kSeed + 5, fast(1 << 14));
  const auto m_reverse = crp::harness::measure_uniform_no_cd_fixed_k(
      reverse, k, kTrials, kSeed + 5, pooled(1 << 14, NoCdEngine::kBinomial));
  table.add_row({"decay, binomial engine", fmt(m_binomial.rounds.mean, 2),
                 fmt(m_binomial.rounds.p90, 1)});
  table.add_row({"decay, per-player engine", fmt(m_players.rounds.mean, 2),
                 fmt(m_players.rounds.p90, 1)});
  table.add_row({"decay, batch engine", fmt(m_batch.rounds.mean, 2),
                 fmt(m_batch.rounds.p90, 1)});
  table.add_row({"reverse decay, binomial", fmt(m_reverse.rounds.mean, 2),
                 fmt(m_reverse.rounds.p90, 1)});
  table.print(std::cout);
  std::cout << "(the engines must agree statistically; sweep direction "
               "only shifts constants)\n\n";
}

void print_aloha_comparison() {
  // The per-player randomized classics vs the uniform protocols. ALOHA
  // with a window tuned to k behaves like fixed 1/k (each slot is a
  // near-Binomial(k, 1/k) trial, so the first singleton slot arrives in
  // ~e rounds); binary exponential backoff, which must DISCOVER the
  // size, pays Theta(k) — exactly the gap a size prediction closes.
  constexpr std::size_t n = 1 << 12;
  std::cout << "== Per-player baselines: slotted ALOHA (n = " << n
            << ") ==\n";
  crp::harness::Table table({"k", "aloha W=k mean", "backoff mean",
                             "decay mean", "fixed 1/k mean"});
  const crp::baselines::DecaySchedule decay(n);
  for (std::size_t k : {8ul, 64ul, 512ul, 4000ul}) {
    const auto m_aloha = crp::harness::measure_parallel(
        [k](std::size_t, std::mt19937_64& rng) {
          return crp::baselines::run_slotted_aloha(k, k, rng, {1 << 16});
        },
        kTrials, kSeed + 8);
    const auto m_backoff = crp::harness::measure_parallel(
        [k](std::size_t, std::mt19937_64& rng) {
          return crp::baselines::run_backoff_aloha(k, 1, 1 << 13, rng,
                                                   {1 << 16});
        },
        kTrials, kSeed + 9);
    const auto m_decay = crp::harness::measure_uniform_no_cd_fixed_k(
        decay, k, kTrials, kSeed + 10, fast(1 << 16));
    const auto fixed =
        crp::baselines::FixedProbabilitySchedule::for_size_estimate(k);
    const auto m_fixed = crp::harness::measure_uniform_no_cd_fixed_k(
        fixed, k, kTrials, kSeed + 11, fast(1 << 12));
    table.add_row({fmt(k), fmt(m_aloha.rounds.mean, 1),
                   fmt(m_backoff.rounds.mean, 1),
                   fmt(m_decay.rounds.mean, 1),
                   fmt(m_fixed.rounds.mean, 1)});
  }
  table.print(std::cout);
  std::cout << "(tuned ALOHA ~ fixed 1/k ~ e rounds; backoff pays "
               "Theta(k) to discover the size; decay pays Theta(log n) "
               "— predictions close exactly the discovery gap)\n\n";
}

// ---- microbenchmarks: engine throughput ----

void BM_BinomialEngine(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const crp::baselines::DecaySchedule decay(1 << 14);
  auto rng = crp::channel::make_rng(kSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crp::channel::run_uniform_no_cd(decay, k, rng, {1 << 14}));
  }
}
BENCHMARK(BM_BinomialEngine)->Arg(16)->Arg(1024)->Arg(16000);

void BM_PerPlayerEngine(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const crp::baselines::DecaySchedule decay(1 << 14);
  auto rng = crp::channel::make_rng(kSeed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crp::channel::run_uniform_no_cd_per_player(
        decay, k, rng, {1 << 14}));
  }
}
BENCHMARK(BM_PerPlayerEngine)->Arg(16)->Arg(1024)->Arg(16000);

void BM_WillardPolicyReplay(benchmark::State& state) {
  const crp::baselines::WillardPolicy willard(1 << 16);
  crp::channel::BitString history;
  for (int i = 0; i < state.range(0); ++i) history.push_back(i % 3 == 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(willard.probability(history));
  }
}
BENCHMARK(BM_WillardPolicyReplay)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  if (crp::bench::consume_skip_tables(argc, argv)) {
    print_worst_case_scaling();
    print_prediction_crossover();
    print_engine_ablation();
    print_aloha_comparison();
  }
  benchmark::Initialize(&argc, argv);
  crp::bench::report_kernel_tier();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
