#!/usr/bin/env python3
"""Diff google-benchmark JSON results against committed baselines.

Usage:
    bench/compare_benches.py BASELINE_DIR NEW_DIR [--threshold PCT]
                             [--normalize] [--filter REGEX]
                             [--rss-gate MB]

Compares every BENCH_*.json present in both directories benchmark by
benchmark (matched on the google-benchmark name) and fails — exit code
1 — when any benchmark's real_time regressed by more than PCT percent
(default 25).

--rss-gate MB additionally scans the NEW results for benchmarks that
report a `peak_rss_mb` counter (the streaming memory benches) and
fails when any exceeds the ceiling — the memory-flatness gate for the
histogram fold. Unlike the timing diff it needs no baseline and no
normalization: peak RSS is a property of the binary, not the machine
speed.

--normalize divides every per-benchmark ratio by the median ratio
across all benchmarks first. A uniform machine-speed difference (the
committed baselines come from the dev container; CI runners differ)
moves every ratio equally and cancels out, so only benchmarks that
regressed *relative to the rest of the suite* flag. Use it whenever
the two sides ran on different hardware.

Benchmarks present on only one side are reported but never fail the
check (new benchmarks land before their baselines do).
"""

import argparse
import json
import re
import sys
from pathlib import Path
from statistics import median


def load_benchmarks(path: Path) -> dict[str, float]:
    """name -> real_time (ns), aggregate entries skipped."""
    with path.open() as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        # Normalize to nanoseconds so mixed time_units compare.
        unit = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[
            bench.get("time_unit", "ns")
        ]
        out[bench["name"]] = float(bench["real_time"]) * unit
    return out


def load_rss_counters(path: Path) -> dict[str, float]:
    """name -> peak_rss_mb for benchmarks that report the counter."""
    with path.open() as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "peak_rss_mb" in bench:
            out[bench["name"]] = float(bench["peak_rss_mb"])
    return out


def check_rss_gate(new_dir: Path, ceiling_mb: float) -> list[str]:
    """Failure lines for every peak_rss_mb counter above the ceiling."""
    failures = []
    for new_file in sorted(new_dir.glob("BENCH_*.json")):
        for name, rss in sorted(load_rss_counters(new_file).items()):
            status = "FAIL" if rss > ceiling_mb else "ok"
            print(f"{new_file.name}: {name}: peak RSS {rss:.1f} MB "
                  f"(ceiling {ceiling_mb:.0f} MB) {status}")
            if rss > ceiling_mb:
                failures.append(f"{new_file.name}: {name}: {rss:.1f} MB")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("new", type=Path)
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="regression threshold in percent (default 25)")
    parser.add_argument("--normalize", action="store_true",
                        help="cancel uniform machine-speed differences "
                             "via the median ratio")
    parser.add_argument("--filter", default="",
                        help="only compare benchmark names matching this "
                             "regex")
    parser.add_argument("--rss-gate", type=float, default=0.0,
                        metavar="MB",
                        help="fail when any new benchmark reports a "
                             "peak_rss_mb counter above this ceiling "
                             "(0 = gate off)")
    args = parser.parse_args()

    pattern = re.compile(args.filter) if args.filter else None
    ratios: list[tuple[str, str, float]] = []  # (file, name, new/old)
    only_old: list[str] = []
    only_new: list[str] = []

    baseline_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {args.baseline}",
              file=sys.stderr)
        return 2
    for base_file in baseline_files:
        new_file = args.new / base_file.name
        if not new_file.exists():
            print(f"-- {base_file.name}: no new result, skipped")
            continue
        old = load_benchmarks(base_file)
        new = load_benchmarks(new_file)
        for name in sorted(old.keys() | new.keys()):
            if pattern and not pattern.search(name):
                continue
            if name not in new:
                only_old.append(f"{base_file.name}:{name}")
            elif name not in old:
                only_new.append(f"{base_file.name}:{name}")
            elif old[name] > 0:
                ratios.append((base_file.name, name, new[name] / old[name]))

    if not ratios:
        print("no overlapping benchmarks to compare", file=sys.stderr)
        return 2

    scale = median(r for _, _, r in ratios) if args.normalize else 1.0
    if args.normalize:
        print(f"median new/old ratio: {scale:.3f} "
              "(dividing it out as the machine-speed factor)")

    limit = 1.0 + args.threshold / 100.0
    regressions = []
    for file, name, ratio in ratios:
        adjusted = ratio / scale
        marker = " <-- REGRESSION" if adjusted > limit else ""
        print(f"{file}: {name}: {ratio:.3f}x"
              + (f" (adjusted {adjusted:.3f}x)" if args.normalize else "")
              + marker)
        if adjusted > limit:
            regressions.append((file, name, adjusted))

    for entry in only_new:
        print(f"new benchmark (no baseline): {entry}")
    for entry in only_old:
        print(f"baseline benchmark missing from new run: {entry}")

    rss_failures = (check_rss_gate(args.new, args.rss_gate)
                    if args.rss_gate > 0 else [])

    # Report every gate's failures before exiting so one failing gate
    # never hides the other.
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
              f"than {args.threshold:.0f}%:", file=sys.stderr)
        for file, name, adjusted in regressions:
            print(f"  {file}: {name}: {adjusted:.3f}x", file=sys.stderr)
    if rss_failures:
        print(f"\nFAIL: {len(rss_failures)} benchmark(s) exceeded the "
              f"{args.rss_gate:.0f} MB peak-RSS ceiling:", file=sys.stderr)
        for entry in rss_failures:
            print(f"  {entry}", file=sys.stderr)
    if regressions or rss_failures:
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0f}% "
          f"({len(ratios)} compared)"
          + (f"; all peak-RSS counters under {args.rss_gate:.0f} MB"
             if args.rss_gate > 0 else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
