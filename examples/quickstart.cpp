// Quickstart: the 60-second tour of the library.
//
// A venue has up to n = 4096 radios. Historically about 100-300 of them
// wake up at once. We encode that history as a predicted network-size
// distribution, hand it to the paper's prediction-augmented algorithms,
// and compare them with the classical prediction-free baselines.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "channel/rng.h"
#include "channel/simulator.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/measure.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"

int main() {
  constexpr std::size_t n = 4096;

  // 1. The "learned" prediction: sizes cluster around 200 devices.
  //    (log-normal over sizes; any SizeDistribution works).
  const crp::info::SizeDistribution predicted =
      crp::predict::log_normal_sizes(n, std::log(200.0), 0.6);
  const crp::info::CondensedDistribution condensed = predicted.condense();
  std::cout << "prediction: " << predicted.describe() << "\n"
            << "condensed entropy H(c(Y)) = " << condensed.entropy()
            << " bits (max would be "
            << crp::harness::fmt(
                   std::log2(double(crp::info::num_ranges(n))), 2)
            << ")\n\n";

  // 2. Build the paper's two algorithms from the prediction.
  const crp::core::LikelihoodOrderedSchedule no_cd(condensed);  // Sec 2.5
  const crp::core::CodedSearchPolicy with_cd(condensed);        // Sec 2.6

  // 3. Run one visible execution (the actual network has 237 radios).
  crp::channel::ExecutionTrace trace;
  auto rng = crp::channel::make_rng(2021);
  const auto run = crp::channel::run_uniform_no_cd(
      no_cd, /*k=*/237, rng, {.max_rounds = 1 << 12, .trace = &trace});
  std::cout << "one execution with k = 237 active radios:\n";
  for (std::size_t r = 0; r < trace.size(); ++r) {
    std::cout << "  round " << r + 1 << ": p = " << trace[r].probability
              << ", " << trace[r].transmitters << " transmitted -> "
              << crp::channel::to_string(trace[r].feedback) << "\n";
  }
  std::cout << "resolved in " << run.rounds << " round(s)\n\n";

  // 4. Monte-Carlo comparison against the prediction-free baselines.
  const crp::baselines::DecaySchedule decay(n);
  const crp::baselines::WillardPolicy willard(n);
  constexpr std::size_t trials = 5000;
  const auto m_no_cd = crp::harness::measure_uniform_no_cd(
      no_cd, predicted, trials, /*seed=*/1, 1 << 14);
  const auto m_decay = crp::harness::measure_uniform_no_cd(
      decay, predicted, trials, /*seed=*/1, 1 << 14);
  const auto m_cd = crp::harness::measure_uniform_cd(
      with_cd, predicted, trials, /*seed=*/2, 1 << 12);
  const auto m_willard = crp::harness::measure_uniform_cd(
      willard, predicted, trials, /*seed=*/2, 1 << 12);

  crp::harness::Table table(
      {"algorithm", "channel", "uses prediction", "mean rounds", "p90"});
  table.add_row({"likelihood-ordered (Sec 2.5)", "no CD", "yes",
                 crp::harness::fmt(m_no_cd.rounds.mean, 2),
                 crp::harness::fmt(m_no_cd.rounds.p90, 1)});
  table.add_row({"decay (baseline)", "no CD", "no",
                 crp::harness::fmt(m_decay.rounds.mean, 2),
                 crp::harness::fmt(m_decay.rounds.p90, 1)});
  table.add_row({"coded-search (Sec 2.6)", "CD", "yes",
                 crp::harness::fmt(m_cd.rounds.mean, 2),
                 crp::harness::fmt(m_cd.rounds.p90, 1)});
  table.add_row({"willard (baseline)", "CD", "no",
                 crp::harness::fmt(m_willard.rounds.mean, 2),
                 crp::harness::fmt(m_willard.rounds.p90, 1)});
  table.print(std::cout);
  return 0;
}
