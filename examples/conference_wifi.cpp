// Scenario: conference-hall Wi-Fi with a drifting prediction model.
//
// A hall hosts sessions whose attendance regime changes through the
// day: sparse mornings, packed keynotes, mid-sized breakouts. An access
// point learns a size distribution from past days and uses it to
// resolve contention among stations waking up simultaneously. This
// example walks a full day:
//   * the learned model starts stale (trained on yesterday's pattern),
//   * each session's true size is drawn from today's regime,
//   * after each session the model retrains on the sizes it observed,
// and reports how the measured KL divergence and the round complexity
// of the Section 2.5 algorithm fall as the model catches up — the
// "predictions improve for free" story from the paper's introduction.
#include <iostream>
#include <vector>

#include "baselines/decay.h"
#include "channel/rng.h"
#include "core/likelihood_schedule.h"
#include "harness/measure.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "predict/noise.h"

namespace {

constexpr std::size_t kNetwork = 1 << 12;  // 4096 stations provisioned

struct Session {
  const char* name;
  double log_mean;  // log of typical attendance
  double spread;
};

}  // namespace

int main() {
  // Today's regimes. Yesterday (the training data) had no keynote, so
  // the model begins badly wrong for session 2.
  const std::vector<Session> today{
      {"registration", std::log(40.0), 0.5},
      {"keynote", std::log(1800.0), 0.25},
      {"breakouts", std::log(250.0), 0.6},
      {"closing", std::log(600.0), 0.4},
  };
  const auto yesterday =
      crp::predict::log_normal_sizes(kNetwork, std::log(120.0), 0.8);

  auto rng = crp::channel::make_rng(7);
  // Laplace-smoothed range histogram the AP keeps updating.
  std::vector<double> observed_range_counts(
      crp::info::num_ranges(kNetwork), 0.25);
  // Seed the model with "yesterday": 50 pseudo-observations.
  for (int i = 0; i < 50; ++i) {
    observed_range_counts[crp::info::range_of_size(yesterday.sample(rng)) -
                          1] += 1.0;
  }

  const crp::baselines::DecaySchedule decay(kNetwork);
  crp::harness::Table table({"session", "true regime", "D_KL(X||model)",
                             "predicted mean", "decay mean", "saving"});
  for (const Session& session : today) {
    const auto truth = crp::predict::log_normal_sizes(
        kNetwork, session.log_mean, session.spread);
    const auto truth_condensed = truth.condense();

    // Current model -> prediction distribution.
    std::vector<double> weights = observed_range_counts;
    double total = 0.0;
    for (double w : weights) total += w;
    for (double& w : weights) w /= total;
    const crp::info::CondensedDistribution model{std::move(weights)};

    const crp::core::LikelihoodOrderedSchedule schedule(model);
    constexpr std::size_t trials = 4000;
    // Fast path: analytic batch engine across all hardware threads.
    const crp::harness::MeasureOptions fast{.max_rounds = 1 << 14};
    const auto m_pred = crp::harness::measure_uniform_no_cd(
        schedule, truth, trials, /*seed=*/11, fast);
    const auto m_decay = crp::harness::measure_uniform_no_cd(
        decay, truth, trials, /*seed=*/11, fast);

    table.add_row(
        {session.name,
         "~" + crp::harness::fmt(std::exp(session.log_mean), 0) +
             " stations",
         crp::harness::fmt(truth_condensed.kl_divergence(model), 3),
         crp::harness::fmt(m_pred.rounds.mean, 2),
         crp::harness::fmt(m_decay.rounds.mean, 2),
         crp::harness::fmt(
             100.0 * (1.0 - m_pred.rounds.mean / m_decay.rounds.mean),
             0) +
             "%"});

    // The AP observes this session's contention instances (40 of them)
    // and folds them into the model for the next session.
    for (int i = 0; i < 40; ++i) {
      observed_range_counts[crp::info::range_of_size(truth.sample(rng)) -
                            1] += 1.0;
    }
  }
  std::cout << "Conference-hall Wi-Fi: prediction-augmented contention "
               "resolution across a day\n(model retrains after each "
               "session; negative saving = stale model worse than "
               "prediction-free decay)\n\n";
  table.print(std::cout);
  std::cout << "\nNote the keynote: the stale model mispredicts (large "
               "D_KL) and the advantage shrinks or inverts — exactly the "
               "2^(2H + 2 D_KL) cost Theorem 2.12 charges. Once "
               "retrained, later sessions recover the win.\n";
  return 0;
}
