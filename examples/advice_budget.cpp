// Scenario: provisioning an advice budget (Section 3).
//
// A coordinator can piggyback b bits of perfect advice on a beacon
// before each contention window. Bits cost airtime, so the operator
// wants the smallest b that meets a latency SLO. This example sweeps b
// for all four Table 2 protocol families and prints the resulting
// worst-case / expected rounds, plus the theoretical ceilings, so an
// operator can read off the cheapest budget meeting a target.
#include <cmath>
#include <iostream>

#include "channel/rng.h"
#include "core/advice.h"
#include "core/advice_deterministic.h"
#include "core/advice_randomized.h"
#include "harness/measure.h"
#include "harness/parallel.h"
#include "harness/table.h"
#include "info/distribution.h"

namespace {
constexpr std::size_t kNetwork = 1 << 10;  // 1024 devices
constexpr std::size_t kRandNetwork = 1 << 16;
using crp::harness::fmt;
}  // namespace

int main() {
  std::cout << "Advice budget planner: rounds as a function of beacon "
               "bits b\n\n";

  // Deterministic protocols: guaranteed (worst-case) latency.
  std::cout << "deterministic guarantees, n = " << kNetwork << ":\n";
  crp::harness::Table det({"b bits", "noCD worst (scan)",
                           "CD worst (descent)", "paper noCD n/2^b",
                           "paper CD log(n)-b"});
  for (std::size_t b = 0; b <= 10; b += 2) {
    const crp::core::SubtreeScanProtocol scan(kNetwork, b);
    const crp::core::TreeDescentCdProtocol descent(kNetwork, b);
    const crp::core::MinIdPrefixAdvice advice(kNetwork, b);
    const double no_cd = crp::harness::worst_case_deterministic_rounds(
        scan, advice, kNetwork, /*k=*/5, false, 200, /*seed=*/3);
    const double cd = crp::harness::worst_case_deterministic_rounds(
        descent, advice, kNetwork, /*k=*/5, true, 200, /*seed=*/4);
    det.add_row({fmt(b), fmt(no_cd, 0), fmt(cd, 0),
                 fmt(double(kNetwork) / std::exp2(double(b)), 0),
                 fmt(std::log2(double(kNetwork)) - double(b), 0)});
  }
  det.print(std::cout);

  // Randomized protocols: expected latency, much larger network.
  std::cout << "\nrandomized expectations, n = " << kRandNetwork
            << " (k drawn uniformly):\n";
  crp::harness::Table rnd({"b bits", "noCD mean (trunc decay)",
                           "CD mean (trunc willard)",
                           "paper noCD log(n)/2^b",
                           "paper CD loglog(n)-b"});
  const auto sizes = crp::info::SizeDistribution::uniform(kRandNetwork);
  constexpr std::size_t trials = 3000;
  for (std::size_t b = 0; b <= 4; ++b) {
    const crp::core::RangeGroupAdvice advice(kRandNetwork, b);
    // Per trial: draw k, compute the advised group, run both protocols.
    // The advised schedule depends on the drawn k, so the no-CD side
    // cannot share one batch sampler across trials; the thread pool
    // still fans the independent trials across every core.
    const auto m_decay = crp::harness::measure_parallel(
        [&](std::size_t, std::mt19937_64& rng) {
          const std::size_t k = sizes.sample(rng);
          const std::size_t group = advice.group_of_range(
              crp::info::range_of_size(k));
          const crp::core::TruncatedDecaySchedule schedule(
              advice.ranges_in_group(group));
          return crp::channel::run_uniform_no_cd(schedule, k, rng,
                                                 {1 << 14});
        },
        trials, /*seed=*/5);
    const auto m_willard = crp::harness::measure_parallel(
        [&](std::size_t, std::mt19937_64& rng) {
          const std::size_t k = sizes.sample(rng);
          const std::size_t group = advice.group_of_range(
              crp::info::range_of_size(k));
          const crp::core::TruncatedWillardPolicy policy(
              advice.ranges_in_group(group));
          return crp::channel::run_uniform_cd(policy, k, rng, {1 << 12});
        },
        trials, /*seed=*/6);
    rnd.add_row(
        {fmt(b), fmt(m_decay.rounds.mean, 2),
         fmt(m_willard.rounds.mean, 2),
         fmt(std::log2(double(kRandNetwork)) / std::exp2(double(b)), 2),
         fmt(std::max(0.0, std::log2(std::log2(double(kRandNetwork))) -
                              double(b)),
             2)});
  }
  rnd.print(std::cout);

  std::cout
      << "\nReading the tables: with collision detection each advice bit "
         "buys one tree level (additive); without it, each bit halves "
         "the remaining work (multiplicative). Theorems 3.4-3.7 say no "
         "protocol can do better — budget accordingly.\n";
  return 0;
}
