// Scenario: LPWAN/IoT duty-cycled uplink with a bimodal fleet.
//
// A sensor fleet reports on two schedules: a small always-on core
// (~30 nodes) checks in hourly, and once a day the full fleet
// (~3000 nodes) wakes together. The gateway cannot tell which regime
// the next contention window belongs to, but it knows the odds
// (23 hourly windows : 1 daily window). Energy is dominated by
// listening rounds, so fewer rounds = longer battery life.
//
// This example compares, over the mixture:
//   * fixed 1/k-hat tuned to the core (great 23/24 of the time,
//     terrible in the daily window),
//   * prediction-free decay,
//   * the Section 2.5 likelihood algorithm fed the true bimodal odds,
//     in both cycling modes (repeat-pass vs proportional),
// and prints the round/energy statistics including the p99 tail that
// the daily window dominates.
#include <iostream>

#include "baselines/decay.h"
#include "baselines/simple.h"
#include "channel/rng.h"
#include "core/likelihood_schedule.h"
#include "harness/measure.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace {
constexpr std::size_t kNetwork = 1 << 12;
using crp::harness::fmt;

crp::info::SizeDistribution fleet_mixture() {
  // 23/24 of windows: ~30 nodes (core); 1/24: ~3000 nodes (full fleet).
  const auto core =
      crp::predict::log_normal_sizes(kNetwork, std::log(30.0), 0.3);
  const auto fleet =
      crp::predict::log_normal_sizes(kNetwork, std::log(3000.0), 0.15);
  std::vector<double> probs(kNetwork + 1, 0.0);
  for (std::size_t k = 2; k <= kNetwork; ++k) {
    probs[k] = (23.0 / 24.0) * core.prob(k) + (1.0 / 24.0) * fleet.prob(k);
  }
  return crp::info::SizeDistribution{std::move(probs)};
}
}  // namespace

int main() {
  const auto mixture = fleet_mixture();
  const auto condensed = mixture.condense();
  std::cout << "IoT duty-cycle fleet: " << mixture.describe() << "\n"
            << "bimodal condensed distribution, H(c(X)) = "
            << fmt(condensed.entropy(), 3) << " bits\n\n";

  constexpr std::size_t trials = 6000;
  const crp::baselines::DecaySchedule decay(kNetwork);
  const auto fixed_core =
      crp::baselines::FixedProbabilitySchedule::for_size_estimate(30);
  const crp::core::LikelihoodOrderedSchedule repeat(
      condensed, crp::core::CycleMode::kRepeatPass);
  const crp::core::LikelihoodOrderedSchedule proportional(
      condensed, crp::core::CycleMode::kProportional);

  crp::harness::Table table({"strategy", "mean rounds", "p50", "p99",
                             "unresolved windows"});
  const auto add = [&](const char* name,
                       const crp::channel::ProbabilitySchedule& schedule,
                       std::size_t budget) {
    const auto m = crp::harness::measure_uniform_no_cd(
        schedule, mixture, trials, /*seed=*/23, budget);
    table.add_row({name, fmt(m.rounds.mean, 2), fmt(m.rounds.p50, 1),
                   fmt(m.rounds.p99, 1),
                   fmt(100.0 * (1.0 - m.success_rate), 2) + "%"});
  };
  // The fixed strategy gets a hard per-window budget: beyond 256 rounds
  // the window is lost (models the duty-cycle regulatory cap).
  add("fixed 1/30 (tuned to core)", fixed_core, 256);
  add("decay (no prediction)", decay, 1 << 14);
  add("likelihood, repeat-pass", repeat, 1 << 14);
  add("likelihood, proportional", proportional, 1 << 14);
  table.print(std::cout);

  std::cout
      << "\nThe core-tuned fixed probability is unbeatable on the hourly "
         "windows but loses the daily full-fleet window outright (3000 "
         "nodes at p = 1/30 collide for the whole budget). The bimodal "
         "prediction keeps the hourly windows near-optimal AND resolves "
         "the daily surge. Proportional cycling (the footnote-6 "
         "extension) trades the two regimes differently: it shaves the "
         "mean by revisiting the likely core range more often, at the "
         "price of a heavier p99 tail in the rare surge windows — pick "
         "the cycle mode to match whether the SLO is average energy or "
         "tail latency.\n";
  return 0;
}
