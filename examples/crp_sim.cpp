// crp_sim: command-line contention-resolution simulator.
//
// Runs any of the library's algorithms against a configurable size
// distribution and prints summary statistics (optionally as CSV). This
// is the "downstream user" entry point: plug in your own learned
// distribution as a CSV file and compare algorithms without writing
// C++.
//
// Usage:
//   crp_sim [--n N] [--dist SPEC] [--algo SPEC] [--trials T]
//           [--seed S] [--max-rounds R] [--csv]
//           [--threads T] [--engine E]
//
//   --dist  uniform              uniform over sizes {2..n}   (default)
//           point:K              all mass on size K
//           zipf:S               Pr(k) ~ 1/k^S
//           lognormal:MU,SIGMA   log-normal around e^MU
//           file:PATH            "size,probability" CSV
//   --algo  decay                Bar-Yehuda decay        (no CD)
//           willard              Willard's search        (CD)
//           fixed:K              transmit w.p. 1/K       (no CD)
//           likelihood           Sec 2.5, prediction = the true dist
//           likelihood-prop      Sec 2.5 with proportional cycling
//           coded                Sec 2.6, prediction = the true dist
//   (default: run ALL algorithms and print a comparison table)
//   --threads  worker threads (0 = all hardware threads, default;
//              1 = serial). Results are identical at any thread count.
//   --engine   no-CD simulation engine: batch (analytic fast path,
//              default) | binomial | per-player. Engines agree up to
//              Monte-Carlo noise; see src/channel/batch.h.
//
// The comparison runs as one sweep-scheduler grid (harness/sweep.h)
// with a pinned seed stream per algorithm, so at a fixed --seed the
// "--algo X" row equals the X row of "--algo all" exactly.
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "baselines/decay.h"
#include "baselines/simple.h"
#include "baselines/willard.h"
#include "core/coded_search.h"
#include "core/likelihood_schedule.h"
#include "harness/csv.h"
#include "harness/measure.h"
#include "harness/sweep.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"

namespace {

struct Options {
  std::size_t n = 1 << 12;
  std::string dist = "uniform";
  std::string algo = "all";
  std::size_t trials = 5000;
  std::uint64_t seed = 1;
  std::size_t max_rounds = 1 << 16;
  bool csv = false;
  std::size_t threads = 0;
  std::string engine = "batch";
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "crp_sim: " << message << "\n"
            << "try: crp_sim --n 4096 --dist lognormal:5.3,0.6 "
               "--algo likelihood --trials 10000\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--n") {
      options.n = std::stoull(next());
    } else if (arg == "--dist") {
      options.dist = next();
    } else if (arg == "--algo") {
      options.algo = next();
    } else if (arg == "--trials") {
      options.trials = std::stoull(next());
    } else if (arg == "--seed") {
      options.seed = std::stoull(next());
    } else if (arg == "--max-rounds") {
      options.max_rounds = std::stoull(next());
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--threads") {
      options.threads = std::stoull(next());
    } else if (arg == "--engine") {
      options.engine = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the header comment of examples/crp_sim.cpp\n";
      std::exit(0);
    } else {
      usage_error("unknown argument " + arg);
    }
  }
  if (options.n < 2) usage_error("--n must be >= 2");
  return options;
}

/// Splits "name:args" into (name, args).
std::pair<std::string, std::string> split_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

crp::info::SizeDistribution make_distribution(const Options& options) {
  const auto [name, args] = split_spec(options.dist);
  if (name == "uniform") {
    return crp::info::SizeDistribution::uniform(options.n);
  }
  if (name == "point") {
    return crp::info::SizeDistribution::point_mass(options.n,
                                                   std::stoull(args));
  }
  if (name == "zipf") {
    return crp::predict::zipf_sizes(options.n, std::stod(args));
  }
  if (name == "lognormal") {
    const auto comma = args.find(',');
    if (comma == std::string::npos) {
      usage_error("lognormal needs MU,SIGMA");
    }
    return crp::predict::log_normal_sizes(
        options.n, std::stod(args.substr(0, comma)),
        std::stod(args.substr(comma + 1)));
  }
  if (name == "file") {
    return crp::harness::read_size_distribution_csv_file(args, options.n);
  }
  usage_error("unknown distribution " + name);
}

struct AlgoResult {
  std::string name;
  std::string channel;
  crp::harness::Measurement measurement;
};

crp::harness::NoCdEngine parse_engine(const Options& options) {
  if (options.engine == "batch") return crp::harness::NoCdEngine::kBatch;
  if (options.engine == "binomial") {
    return crp::harness::NoCdEngine::kBinomial;
  }
  if (options.engine == "per-player") {
    return crp::harness::NoCdEngine::kPerPlayer;
  }
  usage_error("unknown engine " + options.engine);
}

std::vector<AlgoResult> run_algorithms(const Options& options,
                                       const crp::info::SizeDistribution&
                                           actual) {
  const auto condensed = actual.condense();
  const auto want = [&](const std::string& name) {
    return options.algo == "all" || split_spec(options.algo).first == name;
  };

  // The algorithm registry: objects owned here, selected ones become
  // grid cells. seed_stream is the registry position, so "--algo X"
  // reproduces the exact X row of "--algo all" at the same seed.
  const crp::baselines::DecaySchedule decay(options.n);
  // Spec args configure only the algorithm they belong to (fixed:K);
  // any other algorithm's args are ignored, as before the sweep port.
  const auto [spec_name, spec_args] = split_spec(options.algo);
  const std::size_t k_hat =
      spec_name == "fixed" && !spec_args.empty()
          ? std::stoull(spec_args)
          : static_cast<std::size_t>(actual.mean());
  const auto fixed =
      crp::baselines::FixedProbabilitySchedule::for_size_estimate(
          std::max<std::size_t>(k_hat, 1));
  const crp::core::LikelihoodOrderedSchedule likelihood(condensed);
  const crp::core::LikelihoodOrderedSchedule likelihood_prop(
      condensed, crp::core::CycleMode::kProportional);
  const crp::baselines::WillardPolicy willard(options.n);
  const crp::core::CodedSearchPolicy coded(condensed);

  crp::harness::SweepGrid grid;
  std::vector<std::string> channels;
  std::uint64_t stream = 0;
  const auto add = [&](const std::string& spec_name, std::string row_name,
                       std::string channel,
                       const crp::channel::ProbabilitySchedule* schedule,
                       const crp::channel::CollisionPolicy* policy) {
    if (want(spec_name)) {
      grid.add_cell({.algorithm = {.name = std::move(row_name),
                                   .schedule = schedule,
                                   .policy = policy},
                     .sizes = {.name = options.dist,
                               .distribution = &actual},
                     .max_rounds = options.max_rounds,
                     .seed_stream = stream});
      channels.push_back(std::move(channel));
    }
    ++stream;
  };
  add("decay", "decay", "no CD", &decay, nullptr);
  add("fixed", "fixed 1/" + std::to_string(k_hat), "no CD", &fixed,
      nullptr);
  add("likelihood", "likelihood-ordered", "no CD", &likelihood, nullptr);
  add("likelihood-prop", "likelihood-proportional", "no CD",
      &likelihood_prop, nullptr);
  add("willard", "willard", "CD", nullptr, &willard);
  add("coded", "coded-search", "CD", nullptr, &coded);

  const auto cells = grid.cells();
  if (cells.empty()) {
    usage_error("unknown algorithm " + options.algo);
  }
  const auto sweep = crp::harness::run_sweep(
      cells, {.trials = options.trials,
              .seed = options.seed,
              .threads = options.threads,
              .engine = parse_engine(options)});

  std::vector<AlgoResult> results;
  results.reserve(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    results.push_back({sweep[i].cell.algorithm.name, channels[i],
                       sweep[i].measurement});
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);
  const auto actual = make_distribution(options);
  const auto condensed = actual.condense();
  const auto results = run_algorithms(options, actual);

  if (options.csv) {
    auto header = crp::harness::CsvWriter::measurement_header();
    header.insert(header.begin(), {"algorithm", "channel"});
    crp::harness::CsvWriter writer(std::cout, header);
    for (const auto& result : results) {
      auto cells =
          crp::harness::CsvWriter::measurement_cells(result.measurement);
      cells.insert(cells.begin(), {result.name, result.channel});
      writer.row(cells);
    }
    return 0;
  }

  std::cout << actual.describe() << "\n"
            << "H(c(X)) = " << crp::harness::fmt(condensed.entropy(), 3)
            << " bits over " << condensed.size() << " geometric ranges; "
            << options.trials << " trials, seed " << options.seed
            << "\n\n";
  crp::harness::Table table({"algorithm", "channel", "mean", "ci95", "p50",
                             "p90", "p99", "solved"});
  for (const auto& result : results) {
    const auto& m = result.measurement;
    table.add_row({result.name, result.channel,
                   crp::harness::fmt(m.rounds.mean, 2),
                   crp::harness::fmt(m.rounds.ci95, 2),
                   crp::harness::fmt(m.rounds.p50, 1),
                   crp::harness::fmt(m.rounds.p90, 1),
                   crp::harness::fmt(m.rounds.p99, 1),
                   crp::harness::fmt(100.0 * m.success_rate, 1) + "%"});
  }
  table.print(std::cout);
  return 0;
}
