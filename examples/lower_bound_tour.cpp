// A guided tour of the paper's lower-bound machinery (Sections 2.3-2.4)
// with every intermediate object printed. The chain:
//
//   contention resolution algorithm A
//     --(Algorithm 1, RF-Construction)--> range finding sequence S_A
//     --(target-distance coding, Lemma 2.5)--> uniquely decodable code
//     --(Source Coding Theorem, Thm 2.2)--> E[code length] >= H(c(X))
//     ==> A needs Omega(2^H / log log n) expected rounds (Thm 2.4).
//
// Nothing here is asymptotic hand-waving: each arrow is executed and
// each inequality is evaluated on concrete numbers.
#include <cmath>
#include <iostream>

#include "baselines/decay.h"
#include "baselines/willard.h"
#include "harness/exact.h"
#include "harness/table.h"
#include "info/distribution.h"
#include "predict/families.h"
#include "rangefind/coding.h"
#include "rangefind/sequence.h"
#include "rangefind/tree.h"

namespace {
using crp::harness::fmt;

std::string bits_to_string(const std::vector<bool>& bits) {
  std::string out;
  for (bool b : bits) out += b ? '1' : '0';
  return out;
}
}  // namespace

int main() {
  constexpr std::size_t n = 1 << 10;  // 10 geometric ranges
  const std::size_t ranges = crp::info::num_ranges(n);
  const double radius = std::log2(std::log2(double(n)));  // alpha llog n

  std::cout << "THE LOWER-BOUND CHAIN, EXECUTED (n = " << n << ", |L(n)| = "
            << ranges << ", radius = " << fmt(radius, 2) << ")\n\n";

  // Step 0: the algorithm under analysis — plain decay.
  const crp::baselines::DecaySchedule decay(n);
  std::cout << "step 0: algorithm A = decay; probabilities of its first "
               "sweep:\n  ";
  for (std::size_t r = 0; r <= ranges; ++r) {
    std::cout << fmt(decay.probability(r), 4) << " ";
  }
  std::cout << "\n\n";

  // Step 1: RF-Construction (Algorithm 1).
  const auto sequence = crp::rangefind::rf_construction(decay, 40, n);
  std::cout << "step 1: RF-Construction interleaves A's implied guesses "
               "ceil(log2(1/p)) with a rotating sweep of L(n).\n  first "
               "20 entries of S_A: ";
  for (std::size_t i = 0; i < 20; ++i) {
    std::cout << sequence.guesses()[i] << " ";
  }
  std::cout << "\n  S_A solves (n, " << fmt(radius, 2)
            << ")-range finding for every target:\n";
  crp::harness::Table rf_table({"target range", "solved at step",
                                "guess there", "|guess - target|"});
  for (std::size_t target = 1; target <= ranges; ++target) {
    const auto step = sequence.solve(target, radius);
    rf_table.add_row(
        {fmt(target), fmt(*step), fmt(sequence.guesses()[*step - 1]),
         fmt(std::abs(double(sequence.guesses()[*step - 1]) -
                      double(target)),
             0)});
  }
  rf_table.print(std::cout);

  // Step 2: the target-distance code.
  const crp::rangefind::SequenceTargetDistanceCode code(sequence, radius);
  std::cout << "\nstep 2: target-distance coding — send (gamma(step), "
               "sign, distance); the receiver replays S_A to decode:\n";
  crp::harness::Table code_table({"target", "codeword", "bits",
                                  "decodes back to"});
  for (std::size_t target = 1; target <= ranges; ++target) {
    const auto bits = code.encode(target);
    const auto decoded = code.decode(*bits);
    code_table.add_row({fmt(target), bits_to_string(*bits),
                        fmt(bits->size()), fmt(*decoded)});
  }
  code_table.print(std::cout);

  // Step 3: the Source Coding Theorem inequality, on three sources.
  std::cout << "\nstep 3: Shannon forces E[code length] >= H(c(X)) for "
               "any target distribution:\n";
  crp::harness::Table sct_table({"c(X)", "H", "E[code bits]", "holds"});
  const auto check = [&](const std::string& name,
                         const crp::info::CondensedDistribution& targets) {
    const auto [bits, mass] = code.expected_length(targets);
    sct_table.add_row({name, fmt(targets.entropy(), 3), fmt(bits, 3),
                       bits + 1e-9 >= targets.entropy() ? "yes" : "NO"});
    (void)mass;
  };
  check("uniform", crp::info::CondensedDistribution::uniform(ranges));
  check("geometric(0.5)", crp::predict::geometric_ranges(ranges, 0.5));
  check("point mass", crp::info::CondensedDistribution::point_mass(ranges, 6));
  sct_table.print(std::cout);

  // Step 4: close the loop — compare A's actual expected rounds with
  // the entropy bound the chain implies.
  std::cout << "\nstep 4: therefore decay's expected rounds must beat "
               "2^H / (c log log n). Exact expectations (no sampling):\n";
  crp::harness::Table final_table(
      {"c(X)", "H", "bound 2^H/(16 llog n)", "decay E[rounds] (exact)"});
  const double llog = std::log2(std::log2(double(n)));
  for (std::size_t m : {2ul, 4ul, 8ul, 10ul}) {
    const auto condensed = crp::predict::uniform_over_ranges(ranges, m);
    double expectation = 0.0;
    for (std::size_t i = 1; i <= m; ++i) {
      const std::size_t k = crp::info::range_max_size(i);
      expectation += crp::harness::exact_expected_rounds_no_cd(decay, k) /
                     static_cast<double>(m);
    }
    final_table.add_row(
        {"uniform(" + fmt(m) + ")", fmt(condensed.entropy(), 2),
         fmt(std::exp2(condensed.entropy()) / (16.0 * llog), 3),
         fmt(expectation, 2)});
  }
  final_table.print(std::cout);

  // Bonus: the collision-detection chain in one line each.
  std::cout << "\nbonus: the CD chain (Lemmas 2.9/2.11) with Willard's "
               "algorithm:\n";
  const crp::baselines::WillardPolicy willard(n);
  const auto tree =
      crp::rangefind::RangeFindingTree::from_policy(willard, n, 8);
  const double radius_cd =
      std::log2(std::log2(std::log2(double(n)))) + 1.0;
  const crp::rangefind::TreeTargetDistanceCode tree_code(tree, radius_cd);
  const auto uniform = crp::info::CondensedDistribution::uniform(ranges);
  const auto [tree_bits, tree_mass] = tree_code.expected_length(uniform);
  std::cout << "  willard -> tree (" << tree.size() << " nodes, depth "
            << tree.depth() << ") -> code with E[bits] = "
            << fmt(tree_bits, 3) << " >= H = " << fmt(uniform.entropy(), 3)
            << " -> Thm 2.8's H/2 - O(llllog n) expected-round bound.\n";
  (void)tree_mass;
  return 0;
}
